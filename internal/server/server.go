// Package server is the hmptd serving layer: a long-running HTTP
// front-end over the campaign engine that keeps the whole cache ladder
// hot across requests. One process-wide Memo, snapshot cache, analysis
// cache and FlightGroup back every request, so the engine's exactly-once
// guarantees extend across concurrent clients: N identical requests
// arriving together execute at most one kernel and one placement sweep,
// and a warm request is served with zero kernels, zero sampling passes,
// zero placement passes and zero derived snapshots.
//
// The API is deliberately small (ROADMAP item 1 keeps gRPC and
// streaming for later):
//
//	POST /v1/analyze    one workload × platform analysis
//	POST /v1/campaign   a full matrix (workloads × platforms × seeds)
//	GET  /v1/workloads  the resolvable workload and platform names
//	GET  /healthz       liveness (the process is up)
//	GET  /readyz        readiness (503 while draining or cache-degraded)
//	GET  /metrics       Prometheus text exposition (see newMetrics)
//
// Errors are structured JSON: {"error":{"code":"...","message":"..."}}.
// A request whose client disconnects is answered 499 request_cancelled;
// one that outlives its deadline (the request's timeout_ms field or the
// server's -request-timeout) is answered 504 deadline_exceeded. Either
// way the run stops cold work cooperatively and the cache tree stays
// consistent. Handler panics are recovered into 500 internal_panic.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"hmpt/internal/campaign"
	"hmpt/internal/core"
	"hmpt/internal/experiments"
	"hmpt/internal/faultfs"
	"hmpt/internal/trace"
	"hmpt/internal/workloads"
)

// StatusClientClosedRequest is the non-standard (nginx-convention)
// status for a request whose client went away before the response.
const StatusClientClosedRequest = 499

// Config wires a Server to its caches and capacity limits.
type Config struct {
	// CacheDir roots the on-disk snapshot cache; empty keeps captures
	// in the process memo only.
	CacheDir string
	// AnalysisCacheDir roots the on-disk analysis cache; empty keeps
	// analyses in the process memo only.
	AnalysisCacheDir string
	// Parallelism caps each campaign run's worker goroutines
	// (0 = GOMAXPROCS).
	Parallelism int
	// MaxConcurrent caps the number of campaign runs executing at once;
	// excess requests queue (visible as hmptd_queue_depth). 0 means
	// unlimited — coalescing already bounds duplicated work.
	MaxConcurrent int
	// RequestTimeout bounds every run-serving request that does not
	// carry its own timeout_ms; 0 means no server-side deadline.
	RequestTimeout time.Duration
	// Injector, when non-nil, interposes deterministic fault injection
	// between the on-disk caches and the real filesystem, and surfaces
	// its injected-fault counts in /metrics. The chaos harness arms it;
	// production leaves it nil.
	Injector *faultfs.Injector
	// CacheReprobe overrides how long a degraded cache publisher waits
	// before re-probing the disk (0 = the publisher default).
	CacheReprobe time.Duration
	// Log receives request and lifecycle lines; nil uses the default
	// logger.
	Log *log.Logger
}

// Server serves tuning analyses over HTTP from shared warm caches.
type Server struct {
	cfg      Config
	log      *log.Logger
	memo     *campaign.Memo
	flights  *campaign.FlightGroup
	cache    *trace.SnapshotCache
	analyses *core.AnalysisCache
	met      *serverMetrics
	sem      chan struct{}
	queued   atomic.Int64
	draining atomic.Bool
}

// New builds a Server over the configured cache tree. Engines created
// per request share one Memo and one FlightGroup for the life of the
// process — that sharing is what turns the engine's per-run guarantees
// into serving-layer guarantees.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:     cfg,
		log:     cfg.Log,
		memo:    campaign.NewMemo(),
		flights: campaign.NewFlightGroup(),
	}
	if s.log == nil {
		s.log = log.Default()
	}
	var fs faultfs.FS
	if cfg.Injector != nil {
		fs = cfg.Injector
	}
	if cfg.CacheDir != "" {
		c, err := trace.NewSnapshotCacheFS(cfg.CacheDir, fs)
		if err != nil {
			return nil, err
		}
		if cfg.CacheReprobe > 0 {
			c.Publisher().ReprobeAfter = cfg.CacheReprobe
		}
		s.cache = c
	}
	if cfg.AnalysisCacheDir != "" {
		a, err := core.NewAnalysisCacheFS(cfg.AnalysisCacheDir, fs)
		if err != nil {
			return nil, err
		}
		if cfg.CacheReprobe > 0 {
			a.Publisher().ReprobeAfter = cfg.CacheReprobe
		}
		s.analyses = a
	}
	if cfg.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	s.met = newMetrics(s)
	return s, nil
}

// engine returns a campaign engine for one request, backed by the
// server's shared caches, memo and flight group.
func (s *Server) engine() *campaign.Engine {
	return &campaign.Engine{
		Cache:       s.cache,
		Analyses:    s.analyses,
		Memo:        s.memo,
		Flights:     s.flights,
		Parallelism: s.cfg.Parallelism,
	}
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.instrument("/v1/analyze", s.handleAnalyze))
	mux.HandleFunc("POST /v1/campaign", s.instrument("/v1/campaign", s.handleCampaign))
	mux.HandleFunc("GET /v1/workloads", s.instrument("/v1/workloads", s.handleWorkloads))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Known paths with the wrong method should say so rather than 404.
	mux.HandleFunc("/v1/analyze", s.methodNotAllowed(http.MethodPost))
	mux.HandleFunc("/v1/campaign", s.methodNotAllowed(http.MethodPost))
	mux.HandleFunc("/v1/workloads", s.methodNotAllowed(http.MethodGet))
	mux.HandleFunc("/healthz", s.methodNotAllowed(http.MethodGet))
	mux.HandleFunc("/readyz", s.methodNotAllowed(http.MethodGet))
	mux.HandleFunc("/metrics", s.methodNotAllowed(http.MethodGet))
	return s.recoverPanics(mux)
}

// recoverPanics is the outermost middleware: a panicking handler is
// recovered into a structured 500 (best-effort if headers are already
// out) instead of killing the connection — and never the process.
func (s *Server) recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.met.httpPanics.Inc()
				s.log.Printf("hmptd: panic serving %s %s: %v", r.Method, r.URL.Path, rec)
				s.writeError(w, http.StatusInternalServerError, "internal_panic",
					fmt.Sprintf("handler panicked: %v", rec))
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// BeginDrain marks the server as draining: /readyz answers 503 so load
// balancers stop sending new work, while in-flight requests complete
// through the usual http.Server.Shutdown. Draining is one-way.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// instrument wraps a handler with the request counters, the in-flight
// gauge and the whole-request latency histogram.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.met.requests.Inc(endpoint)
		s.met.inflight.Inc()
		defer s.met.inflight.Dec()
		start := time.Now()
		h(w, r)
		s.met.requestSec.Observe(endpoint, time.Since(start).Seconds())
	}
}

func (s *Server) methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s only accepts %s", r.URL.Path, allow))
	}
}

// apiError is the structured error envelope of every non-2xx response.
type apiError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.met.errors.Inc(code)
	var e apiError
	e.Error.Code = code
	e.Error.Message = msg
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(&e)
}

func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, v any) {
	start := time.Now()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; all that is left is to count it.
		s.met.errors.Inc("encode_failed")
		s.log.Printf("hmptd: encoding %s response: %v", endpoint, err)
		return
	}
	s.met.stageSec.Observe("encode", time.Since(start).Seconds())
}

// acquire takes a run slot (when MaxConcurrent caps them), surfacing
// time spent waiting as queue depth. The request context — deadline
// included — cancels the wait when the client goes away or the
// deadline passes.
func (s *Server) acquire(ctx context.Context) error {
	if s.sem == nil {
		return nil
	}
	s.queued.Add(1)
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() {
	if s.sem != nil {
		<-s.sem
	}
}

// decode parses a JSON request body, timing the decode stage. Unknown
// fields are rejected: a typo silently ignored is a wrong analysis
// served with confidence. A body over the cap is a structured 413, not
// a generic JSON error.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	start := time.Now()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "request_too_large",
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		s.writeError(w, http.StatusBadRequest, "bad_json", err.Error())
		return false
	}
	s.met.stageSec.Observe("decode", time.Since(start).Seconds())
	return true
}

// requestContext derives one request's run context: the http.Request
// context (cancelled when the client disconnects) bounded by the
// request's own timeout_ms when set, else the server-wide
// RequestTimeout when configured.
func (s *Server) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	timeout := s.cfg.RequestTimeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
	}
	if timeout > 0 {
		return context.WithTimeout(r.Context(), timeout)
	}
	return context.WithCancel(r.Context())
}

// writeRunError maps a failed run to its structured response:
// cancellation (the client went away) is 499, a blown deadline is 504,
// anything else a 500. The cancellation and timeout counters feed the
// hmptd_* metric families.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		s.met.cancellations.Inc()
		s.writeError(w, StatusClientClosedRequest, "request_cancelled",
			"request cancelled before the run completed")
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeouts.Inc()
		s.writeError(w, http.StatusGatewayTimeout, "deadline_exceeded",
			"request deadline exceeded before the run completed")
	default:
		s.writeError(w, http.StatusInternalServerError, "run_failed", err.Error())
	}
}

// runMatrix executes one campaign run under the concurrency cap,
// timing the run stage. ctx cancellation propagates through the engine
// down to the parallel workers and the core pipeline (see
// campaign.RunContext).
func (s *Server) runMatrix(ctx context.Context, m campaign.Matrix) (*campaign.Result, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	start := time.Now()
	res, err := s.engine().RunContext(ctx, m)
	s.met.stageSec.Observe("run", time.Since(start).Seconds())
	return res, err
}

// AnalyzeRequest is the body of POST /v1/analyze: one workload on one
// platform preset. Zero-valued options inherit the workload's paper
// defaults, exactly like the CLI.
type AnalyzeRequest struct {
	Workload string `json:"workload"`
	// Platform is a preset name ("xeonmax" default, "dual").
	Platform string `json:"platform,omitempty"`
	// Full selects the benchmark-scale instance (Table I benchmarks
	// only); the default fast instance represents the same footprint.
	Full bool `json:"full,omitempty"`
	// Runs overrides measured runs per configuration (0 = default).
	Runs int `json:"runs,omitempty"`
	// Seed overrides the workload's paper seed when non-nil.
	Seed *uint64 `json:"seed,omitempty"`
	// Iterations overrides the iteration/timestep count (0 = default).
	Iterations int `json:"iterations,omitempty"`
	// TimeoutMs bounds this request: past the deadline the run stops
	// cold work cooperatively and the response is 504
	// deadline_exceeded. 0 inherits the server's -request-timeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// CellResult is one evaluated scenario in a response: the Table II
// metrics plus the cache provenance of how cheaply it was served.
type CellResult struct {
	Workload string `json:"workload"`
	Platform string `json:"platform"`
	Variant  string `json:"variant,omitempty"`
	Error    string `json:"error,omitempty"`

	MaxSpeedup     float64 `json:"max_speedup,omitempty"`
	BestConfig     string  `json:"best_config,omitempty"`
	HBMOnlySpeedup float64 `json:"hbm_only_speedup,omitempty"`
	NinetyUsage    float64 `json:"ninety_usage,omitempty"`
	MemoryBytes    int64   `json:"memory_bytes,omitempty"`
	FilteredAllocs int     `json:"filtered_allocs,omitempty"`
	BaselineSec    float64 `json:"baseline_seconds,omitempty"`
	SampleCount    int     `json:"sample_count,omitempty"`

	// Provenance: how the cell was resolved (see campaign.Cell).
	AnalysisFromCache bool `json:"analysis_from_cache"`
	SnapshotFromCache bool `json:"snapshot_from_cache"`
	Derived           bool `json:"derived"`
	SeedDerived       bool `json:"seed_derived"`
	Coalesced         bool `json:"coalesced"`
}

func cellResult(c *campaign.Cell) CellResult {
	out := CellResult{
		Workload:          c.Workload,
		Platform:          c.Platform,
		Variant:           c.Variant,
		AnalysisFromCache: c.AnalysisFromCache,
		SnapshotFromCache: c.FromCache,
		Derived:           c.Derived,
		SeedDerived:       c.SeedDerived,
		Coalesced:         c.Coalesced,
	}
	if c.Err != nil {
		out.Error = c.Err.Error()
		return out
	}
	an := c.Analysis
	row := an.TableIIRow()
	out.MaxSpeedup = row.MaxSpeedup
	out.HBMOnlySpeedup = row.HBMOnlySpeedup
	out.NinetyUsage = row.NinetyUsage
	out.MemoryBytes = int64(row.MemoryUsage)
	out.FilteredAllocs = row.FilteredAllocs
	out.BaselineSec = an.BaselineTime.Seconds()
	out.SampleCount = an.SampleCount
	if _, cfg := an.MaxSpeedup(); cfg != nil {
		out.BestConfig = cfg.Label
	}
	return out
}

// RunCounters mirrors campaign.Result's work accounting in responses.
type RunCounters struct {
	Snapshots  int `json:"snapshots"`
	Executions int `json:"executions"`
	CacheHits  int `json:"cache_hits"`
	Derived    int `json:"derived"`
	// SeedDerived is the subset of Derived transposed across seeds; it
	// is not a separate provenance class.
	SeedDerived  int `json:"seed_derived"`
	Coalesced    int `json:"coalesced"`
	AnalysisHits int `json:"analysis_hits"`
	CacheErrs    int `json:"cache_errors"`
}

func runCounters(res *campaign.Result) RunCounters {
	return RunCounters{
		Snapshots:    res.Snapshots,
		Executions:   res.Executions,
		CacheHits:    res.CacheHits,
		Derived:      res.Derived,
		SeedDerived:  res.SeedDerived,
		Coalesced:    res.Coalesced,
		AnalysisHits: res.AnalysisHits,
		CacheErrs:    len(res.CacheErrs),
	}
}

// AnalyzeResponse is the body of a successful POST /v1/analyze.
type AnalyzeResponse struct {
	Result   CellResult  `json:"result"`
	Counters RunCounters `json:"counters"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Workload == "" {
		s.writeError(w, http.StatusBadRequest, "bad_request", "missing workload name")
		return
	}
	if !experiments.KnownWorkload(req.Workload) {
		s.writeError(w, http.StatusNotFound, "unknown_workload",
			fmt.Sprintf("unknown workload %q (see GET /v1/workloads)", req.Workload))
		return
	}
	wl, err := experiments.WorkloadByName(req.Workload, req.Full)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	p, err := experiments.PlatformByName(req.Platform)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "unknown_platform", err.Error())
		return
	}
	if req.Runs > 0 {
		wl.Options.Runs = req.Runs
	}
	if req.Seed != nil {
		wl.Options.Seed = *req.Seed
	}
	if req.Iterations > 0 {
		wl.Options.Iterations = req.Iterations
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	res, err := s.runMatrix(ctx, campaign.Matrix{
		Workloads: []campaign.Workload{wl},
		Platforms: []campaign.Platform{p},
	})
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	s.observeResult(res)
	cell := &res.Cells[0]
	if cell.Err != nil {
		s.writeError(w, http.StatusInternalServerError, "analysis_failed", cell.Err.Error())
		return
	}
	s.writeJSON(w, "/v1/analyze", AnalyzeResponse{
		Result:   cellResult(cell),
		Counters: runCounters(res),
	})
}

// CampaignRequest is the body of POST /v1/campaign: a matrix of
// workloads × platforms × optional seed variants. Empty Workloads means
// the full Table I benchmark set; empty Platforms means xeonmax.
type CampaignRequest struct {
	Workloads []string `json:"workloads,omitempty"`
	Platforms []string `json:"platforms,omitempty"`
	Seeds     []uint64 `json:"seeds,omitempty"`
	// SeedCount is shorthand for Seeds = [1..N]; ignored when Seeds is
	// set explicitly (same semantics as CampaignSpec.SeedCount).
	SeedCount  int  `json:"seed_count,omitempty"`
	Full       bool `json:"full,omitempty"`
	Runs       int  `json:"runs,omitempty"`
	Iterations int  `json:"iterations,omitempty"`
	// TimeoutMs bounds this request; see AnalyzeRequest.TimeoutMs.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// CampaignResponse is the body of a successful POST /v1/campaign.
type CampaignResponse struct {
	Cells    []CellResult `json:"cells"`
	Counters RunCounters  `json:"counters"`
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if !s.decode(w, r, &req) {
		return
	}
	names := req.Workloads
	if len(names) == 0 {
		for _, spec := range experiments.Specs() {
			names = append(names, spec.Name)
		}
	}
	var m campaign.Matrix
	for _, name := range names {
		if !experiments.KnownWorkload(name) {
			s.writeError(w, http.StatusNotFound, "unknown_workload",
				fmt.Sprintf("unknown workload %q (see GET /v1/workloads)", name))
			return
		}
		wl, err := experiments.WorkloadByName(name, req.Full)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		if req.Runs > 0 {
			wl.Options.Runs = req.Runs
		}
		if req.Iterations > 0 {
			wl.Options.Iterations = req.Iterations
		}
		m.Workloads = append(m.Workloads, wl)
	}
	platforms := req.Platforms
	if len(platforms) == 0 {
		platforms = []string{"xeonmax"}
	}
	for _, name := range platforms {
		p, err := experiments.PlatformByName(name)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "unknown_platform", err.Error())
			return
		}
		m.Platforms = append(m.Platforms, p)
	}
	seeds := req.Seeds
	if len(seeds) == 0 && req.SeedCount > 0 {
		seeds = make([]uint64, req.SeedCount)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
	}
	for _, seed := range seeds {
		seed := seed
		m.Variants = append(m.Variants, campaign.Variant{
			Name:  fmt.Sprintf("seed%d", seed),
			Apply: func(o *core.Options) { o.Seed = seed },
		})
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	res, err := s.runMatrix(ctx, m)
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	s.observeResult(res)
	out := CampaignResponse{
		Cells:    make([]CellResult, 0, len(res.Cells)),
		Counters: runCounters(res),
	}
	for i := range res.Cells {
		out.Cells = append(out.Cells, cellResult(&res.Cells[i]))
	}
	s.writeJSON(w, "/v1/campaign", out)
}

// WorkloadInfo describes one resolvable workload in GET /v1/workloads.
type WorkloadInfo struct {
	Name string `json:"name"`
	// Benchmark marks the Table I set: paper options and a full-size
	// instance are available.
	Benchmark bool `json:"benchmark"`
	// Grouped marks workloads analysed under a GroupBy policy.
	Grouped bool   `json:"grouped"`
	Seed    uint64 `json:"seed"`
}

// WorkloadsResponse is the body of GET /v1/workloads.
type WorkloadsResponse struct {
	Workloads []WorkloadInfo `json:"workloads"`
	Platforms []string       `json:"platforms"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	var out WorkloadsResponse
	seen := make(map[string]bool)
	for _, spec := range experiments.Specs() {
		seen[spec.Name] = true
		out.Workloads = append(out.Workloads, WorkloadInfo{
			Name:      spec.Name,
			Benchmark: true,
			Grouped:   spec.Options.GroupBy != nil,
			Seed:      spec.Options.Seed,
		})
	}
	for _, name := range workloads.Names() {
		if !seen[name] {
			out.Workloads = append(out.Workloads, WorkloadInfo{Name: name, Seed: 1})
		}
	}
	out.Platforms = experiments.PlatformNames()
	s.writeJSON(w, "/v1/workloads", out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// ReadyStatus is the body of GET /readyz: liveness is /healthz's job,
// readiness folds in drain state and cache health so a balancer stops
// routing to a daemon that is shutting down or persistently failing
// disk writes (degraded daemons still serve — compute-through — but a
// healthy peer is preferable).
type ReadyStatus struct {
	// Status is "ok", "degraded" or "draining" (draining wins).
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	// SnapshotCacheDegraded / AnalysisCacheDegraded report a cache rung
	// whose publisher demoted to read-only after persistent write
	// failure (false when the rung is not configured).
	SnapshotCacheDegraded bool `json:"snapshot_cache_degraded"`
	AnalysisCacheDegraded bool `json:"analysis_cache_degraded"`
}

// readyStatus assembles the readiness report and whether it is a 200.
func (s *Server) readyStatus() (ReadyStatus, bool) {
	st := ReadyStatus{
		Status:                "ok",
		Draining:              s.draining.Load(),
		SnapshotCacheDegraded: s.cache != nil && s.cache.Degraded(),
		AnalysisCacheDegraded: s.analyses != nil && s.analyses.Degraded(),
	}
	if st.SnapshotCacheDegraded || st.AnalysisCacheDegraded {
		st.Status = "degraded"
	}
	if st.Draining {
		st.Status = "draining"
	}
	return st, st.Status == "ok"
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st, ready := s.readyStatus()
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.met.reg.Write(w); err != nil {
		s.log.Printf("hmptd: writing metrics: %v", err)
	}
}
