// Package server is the hmptd serving layer: a long-running HTTP
// front-end over the campaign engine that keeps the whole cache ladder
// hot across requests. One process-wide Memo, snapshot cache, analysis
// cache and FlightGroup back every request, so the engine's exactly-once
// guarantees extend across concurrent clients: N identical requests
// arriving together execute at most one kernel and one placement sweep,
// and a warm request is served with zero kernels, zero sampling passes,
// zero placement passes and zero derived snapshots.
//
// The API is deliberately small (ROADMAP item 1 keeps gRPC and
// streaming for later):
//
//	POST /v1/analyze    one workload × platform analysis
//	POST /v1/campaign   a full matrix (workloads × platforms × seeds)
//	GET  /v1/workloads  the resolvable workload and platform names
//	GET  /healthz       liveness
//	GET  /metrics       Prometheus text exposition (see newMetrics)
//
// Errors are structured JSON: {"error":{"code":"...","message":"..."}}.
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"hmpt/internal/campaign"
	"hmpt/internal/core"
	"hmpt/internal/experiments"
	"hmpt/internal/trace"
	"hmpt/internal/workloads"
)

// Config wires a Server to its caches and capacity limits.
type Config struct {
	// CacheDir roots the on-disk snapshot cache; empty keeps captures
	// in the process memo only.
	CacheDir string
	// AnalysisCacheDir roots the on-disk analysis cache; empty keeps
	// analyses in the process memo only.
	AnalysisCacheDir string
	// Parallelism caps each campaign run's worker goroutines
	// (0 = GOMAXPROCS).
	Parallelism int
	// MaxConcurrent caps the number of campaign runs executing at once;
	// excess requests queue (visible as hmptd_queue_depth). 0 means
	// unlimited — coalescing already bounds duplicated work.
	MaxConcurrent int
	// Log receives request and lifecycle lines; nil uses the default
	// logger.
	Log *log.Logger
}

// Server serves tuning analyses over HTTP from shared warm caches.
type Server struct {
	cfg      Config
	log      *log.Logger
	memo     *campaign.Memo
	flights  *campaign.FlightGroup
	cache    *trace.SnapshotCache
	analyses *core.AnalysisCache
	met      *serverMetrics
	sem      chan struct{}
	queued   atomic.Int64
}

// New builds a Server over the configured cache tree. Engines created
// per request share one Memo and one FlightGroup for the life of the
// process — that sharing is what turns the engine's per-run guarantees
// into serving-layer guarantees.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:     cfg,
		log:     cfg.Log,
		memo:    campaign.NewMemo(),
		flights: campaign.NewFlightGroup(),
	}
	if s.log == nil {
		s.log = log.Default()
	}
	if cfg.CacheDir != "" {
		c, err := trace.NewSnapshotCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	if cfg.AnalysisCacheDir != "" {
		a, err := core.NewAnalysisCache(cfg.AnalysisCacheDir)
		if err != nil {
			return nil, err
		}
		s.analyses = a
	}
	if cfg.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	s.met = newMetrics(s)
	return s, nil
}

// engine returns a campaign engine for one request, backed by the
// server's shared caches, memo and flight group.
func (s *Server) engine() *campaign.Engine {
	return &campaign.Engine{
		Cache:       s.cache,
		Analyses:    s.analyses,
		Memo:        s.memo,
		Flights:     s.flights,
		Parallelism: s.cfg.Parallelism,
	}
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.instrument("/v1/analyze", s.handleAnalyze))
	mux.HandleFunc("POST /v1/campaign", s.instrument("/v1/campaign", s.handleCampaign))
	mux.HandleFunc("GET /v1/workloads", s.instrument("/v1/workloads", s.handleWorkloads))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Known paths with the wrong method should say so rather than 404.
	mux.HandleFunc("/v1/analyze", s.methodNotAllowed(http.MethodPost))
	mux.HandleFunc("/v1/campaign", s.methodNotAllowed(http.MethodPost))
	mux.HandleFunc("/v1/workloads", s.methodNotAllowed(http.MethodGet))
	mux.HandleFunc("/healthz", s.methodNotAllowed(http.MethodGet))
	return mux
}

// instrument wraps a handler with the request counters, the in-flight
// gauge and the whole-request latency histogram.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.met.requests.Inc(endpoint)
		s.met.inflight.Inc()
		defer s.met.inflight.Dec()
		start := time.Now()
		h(w, r)
		s.met.requestSec.Observe(endpoint, time.Since(start).Seconds())
	}
}

func (s *Server) methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s only accepts %s", r.URL.Path, allow))
	}
}

// apiError is the structured error envelope of every non-2xx response.
type apiError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.met.errors.Inc(code)
	var e apiError
	e.Error.Code = code
	e.Error.Message = msg
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(&e)
}

func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, v any) {
	start := time.Now()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; all that is left is to count it.
		s.met.errors.Inc("encode_failed")
		s.log.Printf("hmptd: encoding %s response: %v", endpoint, err)
		return
	}
	s.met.stageSec.Observe("encode", time.Since(start).Seconds())
}

// acquire takes a run slot (when MaxConcurrent caps them), surfacing
// time spent waiting as queue depth. The request context cancels the
// wait when the client goes away.
func (s *Server) acquire(r *http.Request) error {
	if s.sem == nil {
		return nil
	}
	s.queued.Add(1)
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-r.Context().Done():
		return r.Context().Err()
	}
}

func (s *Server) release() {
	if s.sem != nil {
		<-s.sem
	}
}

// decode parses a JSON request body, timing the decode stage. Unknown
// fields are rejected: a typo silently ignored is a wrong analysis
// served with confidence.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	start := time.Now()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_json", err.Error())
		return false
	}
	s.met.stageSec.Observe("decode", time.Since(start).Seconds())
	return true
}

// runMatrix executes one campaign run under the concurrency cap,
// timing the run stage.
func (s *Server) runMatrix(r *http.Request, m campaign.Matrix) (*campaign.Result, error) {
	if err := s.acquire(r); err != nil {
		return nil, err
	}
	defer s.release()
	start := time.Now()
	res, err := s.engine().Run(m)
	s.met.stageSec.Observe("run", time.Since(start).Seconds())
	return res, err
}

// AnalyzeRequest is the body of POST /v1/analyze: one workload on one
// platform preset. Zero-valued options inherit the workload's paper
// defaults, exactly like the CLI.
type AnalyzeRequest struct {
	Workload string `json:"workload"`
	// Platform is a preset name ("xeonmax" default, "dual").
	Platform string `json:"platform,omitempty"`
	// Full selects the benchmark-scale instance (Table I benchmarks
	// only); the default fast instance represents the same footprint.
	Full bool `json:"full,omitempty"`
	// Runs overrides measured runs per configuration (0 = default).
	Runs int `json:"runs,omitempty"`
	// Seed overrides the workload's paper seed when non-nil.
	Seed *uint64 `json:"seed,omitempty"`
	// Iterations overrides the iteration/timestep count (0 = default).
	Iterations int `json:"iterations,omitempty"`
}

// CellResult is one evaluated scenario in a response: the Table II
// metrics plus the cache provenance of how cheaply it was served.
type CellResult struct {
	Workload string `json:"workload"`
	Platform string `json:"platform"`
	Variant  string `json:"variant,omitempty"`
	Error    string `json:"error,omitempty"`

	MaxSpeedup     float64 `json:"max_speedup,omitempty"`
	BestConfig     string  `json:"best_config,omitempty"`
	HBMOnlySpeedup float64 `json:"hbm_only_speedup,omitempty"`
	NinetyUsage    float64 `json:"ninety_usage,omitempty"`
	MemoryBytes    int64   `json:"memory_bytes,omitempty"`
	FilteredAllocs int     `json:"filtered_allocs,omitempty"`
	BaselineSec    float64 `json:"baseline_seconds,omitempty"`
	SampleCount    int     `json:"sample_count,omitempty"`

	// Provenance: how the cell was resolved (see campaign.Cell).
	AnalysisFromCache bool `json:"analysis_from_cache"`
	SnapshotFromCache bool `json:"snapshot_from_cache"`
	Derived           bool `json:"derived"`
	Coalesced         bool `json:"coalesced"`
}

func cellResult(c *campaign.Cell) CellResult {
	out := CellResult{
		Workload:          c.Workload,
		Platform:          c.Platform,
		Variant:           c.Variant,
		AnalysisFromCache: c.AnalysisFromCache,
		SnapshotFromCache: c.FromCache,
		Derived:           c.Derived,
		Coalesced:         c.Coalesced,
	}
	if c.Err != nil {
		out.Error = c.Err.Error()
		return out
	}
	an := c.Analysis
	row := an.TableIIRow()
	out.MaxSpeedup = row.MaxSpeedup
	out.HBMOnlySpeedup = row.HBMOnlySpeedup
	out.NinetyUsage = row.NinetyUsage
	out.MemoryBytes = int64(row.MemoryUsage)
	out.FilteredAllocs = row.FilteredAllocs
	out.BaselineSec = an.BaselineTime.Seconds()
	out.SampleCount = an.SampleCount
	if _, cfg := an.MaxSpeedup(); cfg != nil {
		out.BestConfig = cfg.Label
	}
	return out
}

// RunCounters mirrors campaign.Result's work accounting in responses.
type RunCounters struct {
	Snapshots    int `json:"snapshots"`
	Executions   int `json:"executions"`
	CacheHits    int `json:"cache_hits"`
	Derived      int `json:"derived"`
	Coalesced    int `json:"coalesced"`
	AnalysisHits int `json:"analysis_hits"`
	CacheErrs    int `json:"cache_errors"`
}

func runCounters(res *campaign.Result) RunCounters {
	return RunCounters{
		Snapshots:    res.Snapshots,
		Executions:   res.Executions,
		CacheHits:    res.CacheHits,
		Derived:      res.Derived,
		Coalesced:    res.Coalesced,
		AnalysisHits: res.AnalysisHits,
		CacheErrs:    len(res.CacheErrs),
	}
}

// AnalyzeResponse is the body of a successful POST /v1/analyze.
type AnalyzeResponse struct {
	Result   CellResult  `json:"result"`
	Counters RunCounters `json:"counters"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Workload == "" {
		s.writeError(w, http.StatusBadRequest, "bad_request", "missing workload name")
		return
	}
	if !experiments.KnownWorkload(req.Workload) {
		s.writeError(w, http.StatusNotFound, "unknown_workload",
			fmt.Sprintf("unknown workload %q (see GET /v1/workloads)", req.Workload))
		return
	}
	wl, err := experiments.WorkloadByName(req.Workload, req.Full)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	p, err := experiments.PlatformByName(req.Platform)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "unknown_platform", err.Error())
		return
	}
	if req.Runs > 0 {
		wl.Options.Runs = req.Runs
	}
	if req.Seed != nil {
		wl.Options.Seed = *req.Seed
	}
	if req.Iterations > 0 {
		wl.Options.Iterations = req.Iterations
	}
	res, err := s.runMatrix(r, campaign.Matrix{
		Workloads: []campaign.Workload{wl},
		Platforms: []campaign.Platform{p},
	})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "run_failed", err.Error())
		return
	}
	s.observeResult(res)
	cell := &res.Cells[0]
	if cell.Err != nil {
		s.writeError(w, http.StatusInternalServerError, "analysis_failed", cell.Err.Error())
		return
	}
	s.writeJSON(w, "/v1/analyze", AnalyzeResponse{
		Result:   cellResult(cell),
		Counters: runCounters(res),
	})
}

// CampaignRequest is the body of POST /v1/campaign: a matrix of
// workloads × platforms × optional seed variants. Empty Workloads means
// the full Table I benchmark set; empty Platforms means xeonmax.
type CampaignRequest struct {
	Workloads  []string `json:"workloads,omitempty"`
	Platforms  []string `json:"platforms,omitempty"`
	Seeds      []uint64 `json:"seeds,omitempty"`
	Full       bool     `json:"full,omitempty"`
	Runs       int      `json:"runs,omitempty"`
	Iterations int      `json:"iterations,omitempty"`
}

// CampaignResponse is the body of a successful POST /v1/campaign.
type CampaignResponse struct {
	Cells    []CellResult `json:"cells"`
	Counters RunCounters  `json:"counters"`
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if !s.decode(w, r, &req) {
		return
	}
	names := req.Workloads
	if len(names) == 0 {
		for _, spec := range experiments.Specs() {
			names = append(names, spec.Name)
		}
	}
	var m campaign.Matrix
	for _, name := range names {
		if !experiments.KnownWorkload(name) {
			s.writeError(w, http.StatusNotFound, "unknown_workload",
				fmt.Sprintf("unknown workload %q (see GET /v1/workloads)", name))
			return
		}
		wl, err := experiments.WorkloadByName(name, req.Full)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		if req.Runs > 0 {
			wl.Options.Runs = req.Runs
		}
		if req.Iterations > 0 {
			wl.Options.Iterations = req.Iterations
		}
		m.Workloads = append(m.Workloads, wl)
	}
	platforms := req.Platforms
	if len(platforms) == 0 {
		platforms = []string{"xeonmax"}
	}
	for _, name := range platforms {
		p, err := experiments.PlatformByName(name)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "unknown_platform", err.Error())
			return
		}
		m.Platforms = append(m.Platforms, p)
	}
	for _, seed := range req.Seeds {
		seed := seed
		m.Variants = append(m.Variants, campaign.Variant{
			Name:  fmt.Sprintf("seed%d", seed),
			Apply: func(o *core.Options) { o.Seed = seed },
		})
	}
	res, err := s.runMatrix(r, m)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "run_failed", err.Error())
		return
	}
	s.observeResult(res)
	out := CampaignResponse{
		Cells:    make([]CellResult, 0, len(res.Cells)),
		Counters: runCounters(res),
	}
	for i := range res.Cells {
		out.Cells = append(out.Cells, cellResult(&res.Cells[i]))
	}
	s.writeJSON(w, "/v1/campaign", out)
}

// WorkloadInfo describes one resolvable workload in GET /v1/workloads.
type WorkloadInfo struct {
	Name string `json:"name"`
	// Benchmark marks the Table I set: paper options and a full-size
	// instance are available.
	Benchmark bool `json:"benchmark"`
	// Grouped marks workloads analysed under a GroupBy policy.
	Grouped bool   `json:"grouped"`
	Seed    uint64 `json:"seed"`
}

// WorkloadsResponse is the body of GET /v1/workloads.
type WorkloadsResponse struct {
	Workloads []WorkloadInfo `json:"workloads"`
	Platforms []string       `json:"platforms"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	var out WorkloadsResponse
	seen := make(map[string]bool)
	for _, spec := range experiments.Specs() {
		seen[spec.Name] = true
		out.Workloads = append(out.Workloads, WorkloadInfo{
			Name:      spec.Name,
			Benchmark: true,
			Grouped:   spec.Options.GroupBy != nil,
			Seed:      spec.Options.Seed,
		})
	}
	for _, name := range workloads.Names() {
		if !seen[name] {
			out.Workloads = append(out.Workloads, WorkloadInfo{Name: name, Seed: 1})
		}
	}
	out.Platforms = experiments.PlatformNames()
	s.writeJSON(w, "/v1/workloads", out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.met.reg.Write(w); err != nil {
		s.log.Printf("hmptd: writing metrics: %v", err)
	}
}
