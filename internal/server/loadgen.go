package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hmpt/internal/experiments"
)

// LoadConfig drives RunLoad: a deterministic closed-loop load test
// against a running daemon. Clients goroutines each hold one connection
// and issue requests back-to-back (no think time); the request mix is a
// fixed round-robin over Workloads by global request index, so two runs
// with the same config issue exactly the same request sequence — only
// the interleaving differs.
type LoadConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent closed-loop clients
	// (default 4).
	Clients int
	// Requests is the total number of requests across all clients
	// (default 64).
	Requests int
	// Workloads is the request mix (default DefaultLoadWorkloads()).
	Workloads []string
	// Platform is the platform preset every request asks for
	// (default "xeonmax").
	Platform string
	// Timeout bounds each request (default 60s — a cold kernel capture
	// is part of the first burst's job).
	Timeout time.Duration
}

// LoadReport is RunLoad's outcome: counts, throughput and the latency
// distribution of the successful requests, in milliseconds. Failures
// are broken out by class — Non2xx (the daemon answered with an error
// status) and Timeouts (the per-request deadline expired) — so a smoke
// gate can hold warm traffic to zero non-2xx while tolerating, say, a
// bounded timeout rate; Errors remains the total of every failure
// (non-2xx + timeouts + transport errors).
type LoadReport struct {
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	Non2xx         int     `json:"non_2xx"`
	Timeouts       int     `json:"timeouts"`
	ErrorRate      float64 `json:"error_rate"`
	TimeoutRate    float64 `json:"timeout_rate"`
	Clients        int     `json:"clients"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Throughput is served requests per second over the whole burst.
	Throughput float64 `json:"req_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
	// FirstError carries one representative failure for the report
	// artifact; Errors counts them all.
	FirstError string `json:"first_error,omitempty"`
}

// DefaultLoadWorkloads is the standard load-test mix: the full Table I
// benchmark set, so a burst exercises every family in the cache ladder
// (including the GroupBy path via kwave).
func DefaultLoadWorkloads() []string {
	var names []string
	for _, spec := range experiments.Specs() {
		names = append(names, spec.Name)
	}
	return names
}

// RunLoad executes the closed-loop burst and reports throughput and
// latency percentiles. It returns an error only for setup problems
// (bad config); request failures are counted in the report so a smoke
// gate can decide how strict to be.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("server: loadgen needs a base URL")
	}
	clients := cfg.Clients
	if clients <= 0 {
		clients = 4
	}
	total := cfg.Requests
	if total <= 0 {
		total = 64
	}
	if clients > total {
		clients = total
	}
	mix := cfg.Workloads
	if len(mix) == 0 {
		mix = DefaultLoadWorkloads()
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("server: loadgen needs at least one workload")
	}
	platform := cfg.Platform
	if platform == "" {
		platform = "xeonmax"
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}

	// Pre-encode one body per workload: the loop measures the server,
	// not the client's JSON encoder.
	bodies := make([][]byte, len(mix))
	for i, name := range mix {
		b, err := json.Marshal(AnalyzeRequest{Workload: name, Platform: platform})
		if err != nil {
			return nil, fmt.Errorf("server: encoding loadgen request: %w", err)
		}
		bodies[i] = b
	}
	url := cfg.BaseURL + "/v1/analyze"
	client := &http.Client{Timeout: timeout}

	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies = make([]float64, 0, total)
		errs      int
		non2xx    int
		timeouts  int
		firstErr  string
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				outcome, err := doAnalyze(client, url, body)
				dt := time.Since(t0)
				mu.Lock()
				switch outcome {
				case outcomeOK:
					latencies = append(latencies, dt.Seconds()*1e3)
				case outcomeNon2xx:
					non2xx++
				case outcomeTimeout:
					timeouts++
				}
				if err != nil {
					errs++
					if firstErr == "" {
						firstErr = err.Error()
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Requests:       total,
		Errors:         errs,
		Non2xx:         non2xx,
		Timeouts:       timeouts,
		ErrorRate:      float64(errs) / float64(total),
		TimeoutRate:    float64(timeouts) / float64(total),
		Clients:        clients,
		ElapsedSeconds: elapsed.Seconds(),
		FirstError:     firstErr,
	}
	if served := total - errs; served > 0 && elapsed > 0 {
		rep.Throughput = float64(served) / elapsed.Seconds()
	}
	sort.Float64s(latencies)
	rep.P50Ms = percentile(latencies, 0.50)
	rep.P95Ms = percentile(latencies, 0.95)
	rep.P99Ms = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.MaxMs = latencies[n-1]
	}
	return rep, nil
}

// outcome classifies one request for the report's failure breakdown.
type outcome int

const (
	outcomeOK        outcome = iota
	outcomeNon2xx            // the daemon answered with an error status
	outcomeTimeout           // the per-request deadline expired
	outcomeTransport         // connection refused/reset and other I/O failures
)

// doAnalyze issues one analyze request, classifies the result, and
// fully drains the response so the connection is reused.
func doAnalyze(client *http.Client, url string, body []byte) (outcome, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return outcomeTimeout, err
		}
		return outcomeTransport, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return outcomeNon2xx, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return outcomeTransport, err
	}
	return outcomeOK, nil
}

// percentile returns the pth percentile (0..1) of sorted samples by the
// nearest-rank method, 0 for an empty set.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*p+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
