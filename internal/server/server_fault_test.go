package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hmpt/internal/core"
	"hmpt/internal/faultfs"
)

func TestReadyzHealthyThenDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthy /readyz status %d, want 200: %s", resp.StatusCode, b)
	}
	var st ReadyStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" || st.Draining {
		t.Errorf("healthy status = %+v, want ok/not-draining", st)
	}

	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz status %d, want 503: %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "draining" || !st.Draining {
		t.Errorf("draining status = %+v, want draining", st)
	}
	// Liveness is unaffected: the process is still up.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz during drain status %d, want 200", resp.StatusCode)
	}
}

func TestRequestTooLargeReturns413(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	big := `{"workload":"` + strings.Repeat("x", 1<<20) + `"}`
	resp, b := postJSON(t, ts.URL+"/v1/analyze", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", resp.StatusCode)
	}
	if code := errorCode(t, b); code != "request_too_large" {
		t.Errorf("error code %q, want request_too_large", code)
	}
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Errorf("Allow = %q, want GET", allow)
	}
	if code := errorCode(t, b); code != "method_not_allowed" {
		t.Errorf("error code %q, want method_not_allowed", code)
	}
}

func TestCancelledRequestReturns499(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze",
		strings.NewReader(`{"workload":"synth","seed":909}`)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Errorf("status %d, want 499", rec.Code)
	}
	if code := errorCode(t, rec.Body.Bytes()); code != "request_cancelled" {
		t.Errorf("error code %q, want request_cancelled", code)
	}
	if got := s.met.cancellations.Value(); got != 1 {
		t.Errorf("cancellations counter = %d, want 1", got)
	}
}

// TestDeadlineExceededReturns504 pins the timeout path deterministically
// by filling the single run slot so the request's deadline expires in
// the queue.
func TestDeadlineExceededReturns504(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	s.sem <- struct{}{} // occupy the only slot
	defer func() { <-s.sem }()
	resp, b := postJSON(t, ts.URL+"/v1/analyze", `{"workload":"synth","timeout_ms":40}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504: %s", resp.StatusCode, b)
	}
	if code := errorCode(t, b); code != "deadline_exceeded" {
		t.Errorf("error code %q, want deadline_exceeded", code)
	}
	if got := s.met.timeouts.Value(); got != 1 {
		t.Errorf("timeouts counter = %d, want 1", got)
	}
}

func TestPanicMiddlewareRecoversInto500(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("poisoned handler")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", rec.Code)
	}
	if code := errorCode(t, rec.Body.Bytes()); code != "internal_panic" {
		t.Errorf("error code %q, want internal_panic", code)
	}
	if got := s.met.httpPanics.Value(); got != 1 {
		t.Errorf("httpPanics counter = %d, want 1", got)
	}
}

// waitUntil polls cond up to 10s.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before deadline")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// tempFiles returns fsatomic staging leftovers under dir.
func tempFiles(t *testing.T, dir string) []string {
	t.Helper()
	var stray []string
	for _, pattern := range []string{"*.tmp*", ".*.tmp*"} {
		m, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			t.Fatal(err)
		}
		stray = append(stray, m...)
	}
	return stray
}

// TestCancelledCampaignStopsColdWork is the HTTP acceptance criterion:
// a cancelled POST /v1/campaign stops cold work mid-matrix (strictly
// fewer kernel executions and sweep evaluations than the full matrix),
// returns the structured 499, leaves no staging temp files in the cache
// tree, and an identical follow-up request completes.
func TestCancelledCampaignStopsColdWork(t *testing.T) {
	cacheDir := t.TempDir()
	anDir := filepath.Join(cacheDir, "analyses")
	s, err := New(Config{CacheDir: cacheDir, AnalysisCacheDir: anDir, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	// chase is the seed-dependent derivation opt-out, so its eight seeds
	// really are eight distinct kernel executions — a seed-invariant
	// workload would execute one kernel and derive the rest, leaving the
	// cancellation nothing to save.
	body := `{"workloads":["chase"],"seeds":[9001,9002,9003,9004,9005,9006,9007,9008],"timeout_ms":0}`

	baseKernels := core.KernelExecutions()
	baseSweeps := core.SweepEvaluations()
	ctx, cancel := context.WithCancel(context.Background())
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest(http.MethodPost, "/v1/campaign", strings.NewReader(body)).WithContext(ctx)
		req.Header.Set("Content-Type", "application/json")
		s.Handler().ServeHTTP(rec, req)
	}()
	// Cancel as soon as the first cold kernel is underway — mid-matrix,
	// with seven more cells' worth of work still unstarted.
	waitUntil(t, func() bool { return core.KernelExecutions() > baseKernels })
	cancel()
	<-done
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("cancelled campaign status %d, want 499: %s", rec.Code, rec.Body.String())
	}
	if code := errorCode(t, rec.Body.Bytes()); code != "request_cancelled" {
		t.Errorf("error code %q, want request_cancelled", code)
	}
	// Let the detached in-flight computation wind down, then check the
	// cache tree: no staging temp files survive a cancellation.
	waitUntil(t, func() bool { return s.flights.InFlight() == 0 })
	cancelledKernels := core.KernelExecutions() - baseKernels
	cancelledSweeps := core.SweepEvaluations() - baseSweeps
	for _, dir := range []string{cacheDir, anDir} {
		if stray := tempFiles(t, dir); len(stray) > 0 {
			t.Errorf("staging temp files left in %s after cancellation: %v", dir, stray)
		}
	}

	// The identical request completes, and its work quantifies what the
	// full matrix needs: the cancelled run must have done strictly less.
	req2 := httptest.NewRequest(http.MethodPost, "/v1/campaign", strings.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	rec2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("retry status %d: %s", rec2.Code, rec2.Body.String())
	}
	var out CampaignResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Cells) != 8 {
		t.Fatalf("retry served %d cells, want 8", len(out.Cells))
	}
	for _, c := range out.Cells {
		if c.Error != "" {
			t.Errorf("retry cell %s/%s/%s failed: %s", c.Workload, c.Platform, c.Variant, c.Error)
		}
	}
	fullKernels := core.KernelExecutions() - baseKernels
	fullSweeps := core.SweepEvaluations() - baseSweeps
	if cancelledKernels >= fullKernels {
		t.Errorf("cancelled run executed %d kernels, full matrix needed %d — cancellation saved nothing",
			cancelledKernels, fullKernels)
	}
	if cancelledSweeps >= fullSweeps {
		t.Errorf("cancelled run ran %d sweeps, full matrix needed %d — cancellation saved nothing",
			cancelledSweeps, fullSweeps)
	}
}

// TestWarmServingSurvivesFaultStorm is the chaos harness: a warmed
// daemon keeps serving 200s with all zero-work counters flat while a
// seeded fault storm breaks every cache write, the degraded-mode
// transition is observable (readyz, gauge), and the cache recovers via
// re-probe once the storm passes.
func TestWarmServingSurvivesFaultStorm(t *testing.T) {
	cacheDir := t.TempDir()
	anDir := filepath.Join(cacheDir, "analyses")
	inj := faultfs.NewInjector(nil, faultfs.Config{Seed: 7, WriteEIO: 1, MaxFaults: 3})
	inj.SetArmed(false) // boot and warm-up must not consume the schedule
	s, ts := newTestServer(t, Config{
		CacheDir:         cacheDir,
		AnalysisCacheDir: anDir,
		Injector:         inj,
		CacheReprobe:     50 * time.Millisecond,
	})

	warmBody := `{"workload":"synth","seed":31337}`
	if resp, b := postJSON(t, ts.URL+"/v1/analyze", warmBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status %d: %s", resp.StatusCode, b)
	}

	// Storm: every cache write faults (EIO rate 1) until the 3-fault
	// budget runs dry. One cold request's snapshot store burns the whole
	// budget (initial try + 2 retries) and demotes the snapshot cache.
	inj.SetArmed(true)
	if resp, b := postJSON(t, ts.URL+"/v1/analyze", `{"workload":"synth","seed":41}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold request during fault storm status %d, want 200 (compute-through): %s", resp.StatusCode, b)
	}
	if !s.cache.Degraded() {
		t.Fatal("snapshot cache not degraded after exhausting publish retries under EIO storm")
	}
	if got := inj.Stats().EIO; got != 3 {
		t.Errorf("injected EIO count = %d, want 3 (deterministic schedule)", got)
	}

	// Warm traffic through the degraded daemon: all 200, zero work.
	baseKernels := core.KernelExecutions()
	baseSamples := core.SamplePasses()
	baseSweeps := core.SweepEvaluations()
	baseDerived := core.DerivedSnapshots()
	for i := 0; i < 4; i++ {
		resp, b := postJSON(t, ts.URL+"/v1/analyze", warmBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm request %d during degraded mode: status %d: %s", i, resp.StatusCode, b)
		}
		var out AnalyzeResponse
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Result.AnalysisFromCache {
			t.Errorf("warm request %d not served from cache during degraded mode", i)
		}
	}
	if d := core.KernelExecutions() - baseKernels; d != 0 {
		t.Errorf("warm serving under fault storm executed %d kernels, want 0", d)
	}
	if d := core.SamplePasses() - baseSamples; d != 0 {
		t.Errorf("warm serving under fault storm ran %d sampling passes, want 0", d)
	}
	if d := core.SweepEvaluations() - baseSweeps; d != 0 {
		t.Errorf("warm serving under fault storm ran %d placement passes, want 0", d)
	}
	if d := core.DerivedSnapshots() - baseDerived; d != 0 {
		t.Errorf("warm serving under fault storm derived %d snapshots, want 0", d)
	}

	// The degradation is observable: /readyz is 503 and the gauge is 1.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("degraded /readyz status %d, want 503: %s", resp.StatusCode, b)
	}
	var st ReadyStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "degraded" || !st.SnapshotCacheDegraded {
		t.Errorf("degraded readyz = %+v, want degraded snapshot cache", st)
	}
	scrape := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		mb, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(mb)
	}
	m := scrape()
	for _, want := range []string{
		`hmptd_cache_degraded{cache="snapshot"} 1`,
		`hmptd_faults_injected_total{kind="eio"} 3`,
		`hmptd_snapshot_publish_total{event="demotion"} 1`,
		`hmptd_snapshot_publish_total{event="retry"} 2`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q during fault storm", want)
		}
	}

	// Storm over (budget exhausted): after the re-probe window a cold
	// request's store probes the disk, succeeds, and clears degraded.
	time.Sleep(70 * time.Millisecond)
	if resp, b := postJSON(t, ts.URL+"/v1/analyze", `{"workload":"synth","seed":43}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-storm cold request status %d: %s", resp.StatusCode, b)
	}
	if s.cache.Degraded() {
		t.Error("snapshot cache still degraded after successful re-probe")
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("recovered /readyz status %d, want 200: %s", resp.StatusCode, b)
	}
	m = scrape()
	for _, want := range []string{
		`hmptd_cache_degraded{cache="snapshot"} 0`,
		`hmptd_snapshot_publish_total{event="recovery"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q after recovery", want)
		}
	}
}

func TestLoadgenSeparatesNon2xxAndTimeouts(t *testing.T) {
	// Non-2xx: every request names an unknown workload.
	_, ts := newTestServer(t, Config{})
	rep, err := RunLoad(LoadConfig{
		BaseURL:   ts.URL,
		Clients:   2,
		Requests:  4,
		Workloads: []string{"no-such-workload"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Non2xx != 4 || rep.Timeouts != 0 || rep.Errors != 4 {
		t.Errorf("non2xx=%d timeouts=%d errors=%d, want 4/0/4", rep.Non2xx, rep.Timeouts, rep.Errors)
	}
	if rep.ErrorRate != 1 || rep.TimeoutRate != 0 {
		t.Errorf("error_rate=%v timeout_rate=%v, want 1/0", rep.ErrorRate, rep.TimeoutRate)
	}

	// Timeouts: a sloth server that outlives the client deadline.
	sloth := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
	}))
	defer sloth.Close()
	rep, err = RunLoad(LoadConfig{
		BaseURL:   sloth.URL,
		Clients:   2,
		Requests:  4,
		Workloads: []string{"synth"},
		Timeout:   30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeouts != 4 || rep.Non2xx != 0 || rep.Errors != 4 {
		t.Errorf("timeouts=%d non2xx=%d errors=%d, want 4/0/4", rep.Timeouts, rep.Non2xx, rep.Errors)
	}
	if rep.TimeoutRate != 1 {
		t.Errorf("timeout_rate=%v, want 1", rep.TimeoutRate)
	}
	var buf strings.Builder
	if err := json.NewEncoder(&buf).Encode(rep); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"non_2xx", "timeouts", "error_rate", "timeout_rate"} {
		if !strings.Contains(buf.String(), fmt.Sprintf("%q", field)) {
			t.Errorf("report JSON missing field %q", field)
		}
	}
}
