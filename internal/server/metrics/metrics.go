// Package metrics is a dependency-free Prometheus-text-format metrics
// registry for the hmptd serving layer. It implements the small subset
// of the exposition format the daemon needs — counters, gauges,
// histograms, and single-label vectors of each — without pulling in the
// Prometheus client library (the repo's no-new-dependencies rule).
//
// Naming follows the Prometheus conventions the scraping side expects:
// `<subsystem>_<noun>_<unit>` with `_total` on counters, `_seconds` on
// latency histograms, and snake_case label names. All collectors are
// safe for concurrent use; Write serialises a consistent point-in-time
// snapshot in deterministic (sorted) order so tests can compare output
// textually.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of named collectors and renders them in the
// Prometheus text exposition format (version 0.0.4, the format every
// Prometheus-compatible scraper accepts).
type Registry struct {
	mu         sync.Mutex
	collectors []collector
	names      map[string]struct{}
}

// collector is one named metric family: it renders its full exposition
// block (HELP/TYPE header plus sample lines).
type collector interface {
	name() string
	write(w io.Writer) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) register(c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[c.name()]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", c.name()))
	}
	r.names[c.name()] = struct{}{}
	r.collectors = append(r.collectors, c)
}

// Write renders every registered collector, sorted by metric name, in
// the Prometheus text format. Collection is lock-free per sample
// (atomic loads), so a scrape never blocks the serving path.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	cs := make([]collector, len(r.collectors))
	copy(cs, r.collectors)
	r.mu.Unlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].name() < cs[j].name() })
	for _, c := range cs {
		if err := c.write(w); err != nil {
			return err
		}
	}
	return nil
}

// header writes the # HELP / # TYPE preamble of one metric family.
func header(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
	return err
}

// escapeHelp escapes backslashes and newlines per the text format spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double-quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// fmtFloat renders a sample value the way Prometheus expects: integral
// values without an exponent, +Inf for the histogram upper bound.
func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// --- Counter -------------------------------------------------------------

// Counter is a monotonically increasing value.
type Counter struct {
	nm, help string
	v        atomic.Int64
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{nm: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) name() string { return c.nm }

func (c *Counter) write(w io.Writer) error {
	if err := header(w, c.nm, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
	return err
}

// --- CounterVec ----------------------------------------------------------

// CounterVec is a counter family partitioned by one label.
type CounterVec struct {
	nm, help, label string
	mu              sync.Mutex
	vals            map[string]*atomic.Int64
}

// NewCounterVec registers and returns a single-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	c := &CounterVec{nm: name, help: help, label: label, vals: make(map[string]*atomic.Int64)}
	r.register(c)
	return c
}

func (c *CounterVec) get(value string) *atomic.Int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vals[value]
	if !ok {
		v = new(atomic.Int64)
		c.vals[value] = v
	}
	return v
}

// Inc adds one to the child for the label value.
func (c *CounterVec) Inc(value string) { c.get(value).Add(1) }

// Add adds n to the child for the label value.
func (c *CounterVec) Add(value string, n int64) { c.get(value).Add(n) }

// Value returns the child's current count (zero if never touched).
func (c *CounterVec) Value(value string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.vals[value]; ok {
		return v.Load()
	}
	return 0
}

func (c *CounterVec) name() string { return c.nm }

func (c *CounterVec) write(w io.Writer) error {
	if err := header(w, c.nm, c.help, "counter"); err != nil {
		return err
	}
	c.mu.Lock()
	keys := make([]string, 0, len(c.vals))
	for k := range c.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, len(keys))
	for i, k := range keys {
		lines[i] = fmt.Sprintf("%s{%s=\"%s\"} %d\n", c.nm, c.label, escapeLabel(k), c.vals[k].Load())
	}
	c.mu.Unlock()
	for _, l := range lines {
		if _, err := io.WriteString(w, l); err != nil {
			return err
		}
	}
	return nil
}

// --- Gauge ---------------------------------------------------------------

// Gauge is a value that can go up and down.
type Gauge struct {
	nm, help string
	v        atomic.Int64
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{nm: name, help: help}
	r.register(g)
	return g
}

// Inc adds one. Dec subtracts one. Set stores v. Value reads.
func (g *Gauge) Inc()         { g.v.Add(1) }
func (g *Gauge) Dec()         { g.v.Add(-1) }
func (g *Gauge) Set(v int64)  { g.v.Store(v) }
func (g *Gauge) Value() int64 { return g.v.Load() }
func (g *Gauge) name() string { return g.nm }
func (g *Gauge) write(w io.Writer) error {
	if err := header(w, g.nm, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", g.nm, g.v.Load())
	return err
}

// --- Func collectors -----------------------------------------------------

// funcCollector samples a callback at scrape time — the bridge from
// values owned elsewhere (the process-wide zero-work counters, the
// flight group's gauges, cache Stats()) into the exposition without
// double bookkeeping.
type funcCollector struct {
	nm, help, typ string
	fn            func() float64
}

// NewCounterFunc registers a counter whose value is sampled from fn at
// scrape time. fn must be monotone non-decreasing.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(&funcCollector{nm: name, help: help, typ: "counter", fn: fn})
}

// NewGaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&funcCollector{nm: name, help: help, typ: "gauge", fn: fn})
}

func (f *funcCollector) name() string { return f.nm }

func (f *funcCollector) write(w io.Writer) error {
	if err := header(w, f.nm, f.help, f.typ); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", f.nm, fmtFloat(f.fn()))
	return err
}

// labeledFuncCollector samples a map of label value → sample at scrape
// time (one callback for the whole family, e.g. a cache rung's Stats).
type labeledFuncCollector struct {
	nm, help, typ, label string
	fn                   func() map[string]float64
}

// NewCounterVecFunc registers a single-label counter family whose
// children are sampled from fn at scrape time.
func (r *Registry) NewCounterVecFunc(name, help, label string, fn func() map[string]float64) {
	r.register(&labeledFuncCollector{nm: name, help: help, typ: "counter", label: label, fn: fn})
}

// NewGaugeVecFunc registers a single-label gauge family whose children
// are sampled from fn at scrape time (e.g. per-cache degraded-mode
// flags).
func (r *Registry) NewGaugeVecFunc(name, help, label string, fn func() map[string]float64) {
	r.register(&labeledFuncCollector{nm: name, help: help, typ: "gauge", label: label, fn: fn})
}

func (f *labeledFuncCollector) name() string { return f.nm }

func (f *labeledFuncCollector) write(w io.Writer) error {
	if err := header(w, f.nm, f.help, f.typ); err != nil {
		return err
	}
	vals := f.fn()
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n", f.nm, f.label, escapeLabel(k), fmtFloat(vals[k])); err != nil {
			return err
		}
	}
	return nil
}

// --- Histogram -----------------------------------------------------------

// DefBuckets are the default latency buckets, in seconds — tuned for a
// warm serve path whose p50 sits well under a millisecond but whose
// cold tail (kernel execution) reaches seconds.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a cumulative-bucket histogram in the Prometheus style:
// each `le` bucket counts observations ≤ its upper bound, plus a +Inf
// bucket, _sum and _count series.
type Histogram struct {
	nm, help string
	bounds   []float64
	buckets  []atomic.Int64 // len(bounds)+1; last is +Inf
	count    atomic.Int64
	sumBits  atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram registers and returns a histogram over the given bucket
// upper bounds (nil → DefBuckets). Bounds must be sorted ascending.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{nm: name, help: help, bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	r.register(h)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

func (h *Histogram) name() string { return h.nm }

func (h *Histogram) write(w io.Writer) error {
	if err := header(w, h.nm, h.help, "histogram"); err != nil {
		return err
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nm, fmtFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", h.nm, math.Float64frombits(h.sumBits.Load())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.nm, h.count.Load())
	return err
}

// --- HistogramVec --------------------------------------------------------

// HistogramVec is a histogram family partitioned by one label.
type HistogramVec struct {
	nm, help, label string
	bounds          []float64
	mu              sync.Mutex
	vals            map[string]*Histogram
}

// NewHistogramVec registers and returns a single-label histogram family
// (nil bounds → DefBuckets).
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &HistogramVec{nm: name, help: help, label: label, bounds: bounds, vals: make(map[string]*Histogram)}
	r.register(h)
	return h
}

// Observe records one sample under the label value.
func (h *HistogramVec) Observe(value string, v float64) {
	h.mu.Lock()
	child, ok := h.vals[value]
	if !ok {
		child = &Histogram{nm: h.nm, bounds: h.bounds, buckets: make([]atomic.Int64, len(h.bounds)+1)}
		h.vals[value] = child
	}
	h.mu.Unlock()
	child.Observe(v)
}

func (h *HistogramVec) name() string { return h.nm }

func (h *HistogramVec) write(w io.Writer) error {
	if err := header(w, h.nm, h.help, "histogram"); err != nil {
		return err
	}
	h.mu.Lock()
	keys := make([]string, 0, len(h.vals))
	for k := range h.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*Histogram, len(keys))
	for i, k := range keys {
		children[i] = h.vals[k]
	}
	h.mu.Unlock()
	for i, k := range keys {
		c := children[i]
		lv := escapeLabel(k)
		var cum int64
		for j, b := range c.bounds {
			cum += c.buckets[j].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=%q} %d\n", h.nm, h.label, lv, fmtFloat(b), cum); err != nil {
				return err
			}
		}
		cum += c.buckets[len(c.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"+Inf\"} %d\n", h.nm, h.label, lv, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{%s=\"%s\"} %g\n", h.nm, h.label, lv, math.Float64frombits(c.sumBits.Load())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{%s=\"%s\"} %d\n", h.nm, h.label, lv, c.count.Load()); err != nil {
			return err
		}
	}
	return nil
}
