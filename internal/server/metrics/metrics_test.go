package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "Requests served.")
	g := r.NewGauge("test_inflight", "In-flight requests.")
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Inc()
	g.Dec()

	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests served.\n",
		"# TYPE test_requests_total counter\n",
		"test_requests_total 4\n",
		"# TYPE test_inflight gauge\n",
		"test_inflight 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestCounterVecSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_errors_total", "Errors by endpoint.", "endpoint")
	v.Inc("/v1/campaign")
	v.Add("/v1/analyze", 2)
	v.Inc(`weird"label`)

	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ia := strings.Index(out, `test_errors_total{endpoint="/v1/analyze"} 2`)
	ic := strings.Index(out, `test_errors_total{endpoint="/v1/campaign"} 1`)
	iw := strings.Index(out, `test_errors_total{endpoint="weird\"label"} 1`)
	if ia < 0 || ic < 0 || iw < 0 {
		t.Fatalf("missing samples in:\n%s", out)
	}
	if !(ia < ic && ic < iw) {
		t.Errorf("samples not sorted by label value:\n%s", out)
	}
	if got := v.Value("/v1/analyze"); got != 2 {
		t.Errorf("Value(/v1/analyze) = %d, want 2", got)
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.NewCounterFunc("test_sampled_total", "Sampled counter.", func() float64 { return n })
	r.NewGaugeFunc("test_depth", "Sampled gauge.", func() float64 { return 2.5 })
	r.NewCounterVecFunc("test_cache_ops_total", "Cache ops.", "op", func() map[string]float64 {
		return map[string]float64{"hit": 5, "miss": 1}
	})
	n++

	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"test_sampled_total 42\n",
		"test_depth 2.5\n",
		`test_cache_ops_total{op="hit"} 5`,
		`test_cache_ops_total{op="miss"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		"test_latency_seconds_count 5\n",
		"test_latency_seconds_sum 56.05\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_edge_seconds", "Edge.", []float64{1})
	h.Observe(1) // le="1" means ≤ 1: must land in the first bucket
	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `test_edge_seconds_bucket{le="1"} 1`) {
		t.Errorf("observation at the bound not counted ≤ bound:\n%s", b.String())
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogramVec("test_stage_seconds", "Stage latency.", "stage", []float64{1})
	h.Observe("decode", 0.5)
	h.Observe("run", 2)
	h.Observe("run", 0.25)

	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_stage_seconds_bucket{stage="decode",le="1"} 1`,
		`test_stage_seconds_bucket{stage="decode",le="+Inf"} 1`,
		`test_stage_seconds_bucket{stage="run",le="1"} 1`,
		`test_stage_seconds_bucket{stage="run",le="+Inf"} 2`,
		`test_stage_seconds_count{stage="run"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("registering a duplicate name did not panic")
		}
	}()
	r.NewCounter("dup_total", "y")
}

func TestConcurrentObserveAndWrite(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "x")
	h := r.NewHistogram("conc_seconds", "x", nil)
	v := r.NewCounterVec("conc_by_label_total", "x", "l")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				v.Inc(fmt.Sprintf("l%d", i%3))
				if j%100 == 0 {
					var b strings.Builder
					if err := r.Write(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Errorf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Errorf("histogram count = %d, want 4000", h.Count())
	}
}
