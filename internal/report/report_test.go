package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 22)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.500") {
		t.Errorf("float not formatted: %q", lines[2])
	}
	// Columns align: "value" column starts at the same offset everywhere.
	col := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][col:], "1.500") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("plain", `has "quotes", and comma`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := `plain,"has ""quotes"", and comma"`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("CSV = %q, want to contain %q", sb.String(), want)
	}
}

func TestPlotRenders(t *testing.T) {
	p := NewPlot("test plot")
	p.AddSeries([]float64{0, 0.5, 1}, []float64{1, 1.5, 2}, '*')
	p.HLine(1.8, '-')
	out := p.String()
	if !strings.Contains(out, "test plot") {
		t.Error("title missing")
	}
	if strings.Count(out, "*") != 3 {
		t.Errorf("expected 3 markers:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("reference line missing")
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("empty")
	out := p.String()
	if !strings.Contains(out, "no data") {
		t.Errorf("empty plot output: %q", out)
	}
}

func TestPlotDegenerateRange(t *testing.T) {
	p := NewPlot("flat")
	p.Add(1, 1, 'x')
	p.Add(1, 1, 'y')
	out := p.String() // must not panic or divide by zero
	if out == "" {
		t.Error("no output")
	}
}
