// Package report renders experiment results for terminals and files:
// aligned ASCII tables, simple scatter/line plots, and CSV export. It is
// the output layer of the driver tool (cmd/hmpt) and of cmd/paperrepro.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Write(&sb)
	return sb.String()
}

// WriteCSV renders the table as CSV (minimal quoting: commas and quotes
// in cells are quoted per RFC 4180).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// ScatterPoint is one marked point of a Plot.
type ScatterPoint struct {
	X, Y float64
	Mark rune
}

// Plot is a rudimentary character-cell scatter/line plot for terminals —
// enough to eyeball the paper's summary views without leaving the shell.
type Plot struct {
	Title          string
	XLabel, YLabel string
	Width, Height  int
	Points         []ScatterPoint
	HLines         map[float64]rune // horizontal reference lines
}

// NewPlot returns an empty plot with a default 64×20 canvas.
func NewPlot(title string) *Plot {
	return &Plot{Title: title, Width: 64, Height: 20, HLines: make(map[float64]rune)}
}

// Add places a point.
func (p *Plot) Add(x, y float64, mark rune) {
	p.Points = append(p.Points, ScatterPoint{X: x, Y: y, Mark: mark})
}

// AddSeries places many points with one mark.
func (p *Plot) AddSeries(xs, ys []float64, mark rune) {
	for i := range xs {
		p.Add(xs[i], ys[i], mark)
	}
}

// HLine adds a horizontal reference line at y.
func (p *Plot) HLine(y float64, mark rune) { p.HLines[y] = mark }

// Write renders the plot.
func (p *Plot) Write(w io.Writer) error {
	if len(p.Points) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", p.Title)
		return err
	}
	minX, maxX := p.Points[0].X, p.Points[0].X
	minY, maxY := p.Points[0].Y, p.Points[0].Y
	for _, pt := range p.Points {
		minX, maxX = minf(minX, pt.X), maxf(maxX, pt.X)
		minY, maxY = minf(minY, pt.Y), maxf(maxY, pt.Y)
	}
	for y := range p.HLines {
		minY, maxY = minf(minY, y), maxf(maxY, y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, p.Height)
	for r := range grid {
		grid[r] = make([]rune, p.Width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	toCell := func(x, y float64) (int, int) {
		c := int((x - minX) / (maxX - minX) * float64(p.Width-1))
		r := p.Height - 1 - int((y-minY)/(maxY-minY)*float64(p.Height-1))
		return r, c
	}
	for y, mark := range p.HLines {
		r, _ := toCell(minX, y)
		for c := 0; c < p.Width; c++ {
			grid[r][c] = mark
		}
	}
	for _, pt := range p.Points {
		r, c := toCell(pt.X, pt.Y)
		grid[r][c] = pt.Mark
	}
	if _, err := fmt.Fprintf(w, "%s\n", p.Title); err != nil {
		return err
	}
	for r, row := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(p.Height-1)
		if _, err := fmt.Fprintf(w, "%8.3f |%s\n", yVal, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%9s +%s\n", "", strings.Repeat("-", p.Width)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%10s%-*.3f%*.3f   (%s vs %s)\n", "", p.Width/2, minX, p.Width/2-3, maxX, p.YLabel, p.XLabel)
	return err
}

// String renders the plot to a string.
func (p *Plot) String() string {
	var sb strings.Builder
	_ = p.Write(&sb)
	return sb.String()
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
