// Seed-sweep campaign acceptance tests: an iteration × scale × seed
// sweep over the nine iterative (seed-invariant) workloads must execute
// exactly one kernel per derivation family — every other cell is a
// derivation — pinned by the process-wide kernel, derivation and
// seed-derivation counters. Seed-dependent workloads (chase, randsum)
// must instead fall back to one real capture per seed.
package hmpt

import (
	"fmt"
	"testing"

	"hmpt/internal/campaign"
	"hmpt/internal/core"
	"hmpt/internal/experiments"
	"hmpt/internal/memsim"
	"hmpt/internal/workloads"
)

// iterativeWorkloads builds the campaign rows for the nine iterative
// workloads: the seven Table I benchmarks (reduced-size instances) plus
// the stream and synth microbenchmarks.
func iterativeWorkloads(t *testing.T) []campaign.Workload {
	t.Helper()
	var ws []campaign.Workload
	for _, spec := range experiments.Specs() {
		ws = append(ws, campaign.Workload{Name: spec.Name, Factory: spec.Fast, Options: spec.Options})
	}
	for _, name := range []string{"stream", "synth"} {
		name := name
		ws = append(ws, campaign.Workload{
			Name: name,
			Factory: func() workloads.Workload {
				w, err := workloads.New(name)
				if err != nil {
					panic(err)
				}
				return w
			},
			Options: core.Options{Seed: 1},
		})
	}
	if len(ws) != 9 {
		t.Fatalf("expected the nine iterative workloads, got %d", len(ws))
	}
	return ws
}

// TestCampaignSeedSweepOneKernelPerFamily is the acceptance pin for
// seed-parametric derivation: a 2-iteration × 2-scale × 8-seed sweep
// (32 variants, 288 cells) over the nine iterative workloads executes
// exactly one kernel per family — nine kernels total — and derives
// every other capture, with the cross-seed subset tallied by the
// SeedDerivations counter.
func TestCampaignSeedSweepOneKernelPerFamily(t *testing.T) {
	m := campaign.Matrix{
		Workloads: iterativeWorkloads(t),
		Platforms: []campaign.Platform{{Name: "xeonmax", Platform: memsim.XeonMax9468()}},
	}
	// Iteration counts sit above every workload's tuned default: the
	// family base is real-captured at whichever member hash-orders
	// first, and the solvers' convergence verification needs enough
	// iterations to contract at any (seed, scale) the matrix can pick.
	for _, iters := range []int{10, 20} {
		for _, scale := range []float64{1, 2} {
			for seed := uint64(1); seed <= 8; seed++ {
				iters, scale, seed := iters, scale, seed
				m.Variants = append(m.Variants, campaign.Variant{
					Name: fmt.Sprintf("i%d-s%g-seed%d", iters, scale, seed),
					Apply: func(o *core.Options) {
						o.Iterations = iters
						o.Scale = scale
						o.Seed = seed
					},
				})
			}
		}
	}
	cells := len(m.Workloads) * len(m.Variants)

	baseKernels := core.KernelExecutions()
	baseDerived := core.DerivedSnapshots()
	baseSeedDerived := core.SeedDerivations()
	res, err := (&campaign.Engine{Memo: campaign.NewMemo()}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != cells {
		t.Fatalf("campaign ran %d cells, want %d", len(res.Cells), cells)
	}

	families := len(m.Workloads)
	if got := core.KernelExecutions() - baseKernels; got != int64(families) {
		t.Errorf("sweep executed %d kernels, want exactly one per family (%d)", got, families)
	}
	if res.Executions != families {
		t.Errorf("Result.Executions = %d, want %d", res.Executions, families)
	}
	wantDerived := cells - families
	if res.Derived != wantDerived {
		t.Errorf("Result.Derived = %d, want %d (every non-base cell derived)", res.Derived, wantDerived)
	}
	if got := core.DerivedSnapshots() - baseDerived; got != int64(wantDerived) {
		t.Errorf("DerivedSnapshots delta = %d, want %d", got, wantDerived)
	}
	// Whichever (iterations, scale, seed) member resolves first in a
	// family, its seed is shared by exactly 2×2 = 4 of that family's 32
	// variants, so 32-4 = 28 derivations per family cross seeds.
	wantSeedDerived := families * (len(m.Variants) - 4)
	if res.SeedDerived != wantSeedDerived {
		t.Errorf("Result.SeedDerived = %d, want %d", res.SeedDerived, wantSeedDerived)
	}
	if got := core.SeedDerivations() - baseSeedDerived; got != int64(wantSeedDerived) {
		t.Errorf("SeedDerivations delta = %d, want %d", got, wantSeedDerived)
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.SeedDerived && !c.Derived {
			t.Fatalf("cell %s/%s: SeedDerived without Derived", c.Workload, c.Variant)
		}
	}
}

// TestCampaignSeedSweepSeedDependentFallsBack pins the opt-out path: a
// seed sweep of chase and randsum (no SeedFamily declaration) executes
// one real kernel per seed — derivation refuses, nothing is silently
// transposed — and no seed derivations are tallied.
func TestCampaignSeedSweepSeedDependentFallsBack(t *testing.T) {
	var ws []campaign.Workload
	for _, name := range []string{"chase", "randsum"} {
		name := name
		ws = append(ws, campaign.Workload{
			Name: name,
			Factory: func() workloads.Workload {
				w, err := workloads.New(name)
				if err != nil {
					panic(err)
				}
				return w
			},
			Options: core.Options{Seed: 1},
		})
	}
	m := campaign.Matrix{
		Workloads: ws,
		Platforms: []campaign.Platform{{Name: "xeonmax", Platform: memsim.XeonMax9468()}},
	}
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		m.Variants = append(m.Variants, campaign.Variant{
			Name:  fmt.Sprintf("seed%d", seed),
			Apply: func(o *core.Options) { o.Seed = seed },
		})
	}

	baseKernels := core.KernelExecutions()
	baseSeedDerived := core.SeedDerivations()
	res, err := (&campaign.Engine{Memo: campaign.NewMemo()}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	wantKernels := len(ws) * 3
	if got := core.KernelExecutions() - baseKernels; got != int64(wantKernels) {
		t.Errorf("seed-dependent sweep executed %d kernels, want one per seed (%d)", got, wantKernels)
	}
	if res.Executions != wantKernels || res.Derived != 0 || res.SeedDerived != 0 {
		t.Errorf("executions=%d derived=%d seedDerived=%d, want %d/0/0 (derivation must refuse)",
			res.Executions, res.Derived, res.SeedDerived, wantKernels)
	}
	if got := core.SeedDerivations() - baseSeedDerived; got != 0 {
		t.Errorf("SeedDerivations delta = %d, want 0", got)
	}
	for i := range res.Cells {
		if c := &res.Cells[i]; c.Derived || c.SeedDerived {
			t.Errorf("cell %s/%s marked derived — seed-dependent workloads must capture for real", c.Workload, c.Variant)
		}
	}
}
