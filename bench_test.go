// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkFigN/BenchmarkTableN runs the corresponding
// experiment (reduced-size workload instances; the simulated scale is
// paper scale either way), reports the headline numbers as custom
// metrics, and prints the regenerated series once so the bench log
// doubles as the reproduction record. cmd/paperrepro renders the same
// artefacts with full-size instances outside the bench harness.
package hmpt

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hmpt/internal/campaign"
	"hmpt/internal/core"
	"hmpt/internal/experiments"
	"hmpt/internal/ibs"
	"hmpt/internal/memsim"
	"hmpt/internal/server"
	"hmpt/internal/shard"
	"hmpt/internal/shim"
	"hmpt/internal/trace"
	"hmpt/internal/units"
	"hmpt/internal/workloads"
	"hmpt/internal/workloads/synth"
	"hmpt/internal/xrand"
)

var printOnce sync.Map

// once prints s a single time per key across bench iterations.
func once(key, s string) {
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		fmt.Print(s)
	}
}

func platform() *memsim.Platform { return memsim.XeonMax9468() }

func figSeries(fig *experiments.Figure) string {
	s := fmt.Sprintf("\n== %s: %s ==\n", fig.ID, fig.Title)
	for _, ser := range fig.Series {
		s += fmt.Sprintf("%-18s", ser.Name)
		for i := range ser.X {
			s += fmt.Sprintf(" (%.3g, %.4g)", ser.X[i], ser.Y[i])
		}
		s += "\n"
	}
	return s
}

func BenchmarkFig2StreamScaling(b *testing.B) {
	p := platform()
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2(p)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	ddr := last.Series[0].Y
	hbm := last.Series[1].Y
	b.ReportMetric(ddr[len(ddr)-1], "DDR-GB/s")
	b.ReportMetric(hbm[len(hbm)-1], "HBM-GB/s")
	once("fig2", figSeries(last))
}

func BenchmarkFig3LatencyWindow(b *testing.B) {
	p := platform()
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig3(p)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	d := last.Series[0].Y
	h := last.Series[1].Y
	b.ReportMetric(d[len(d)-1], "DDR-ns")
	b.ReportMetric(h[len(h)-1], "HBM-ns")
	b.ReportMetric(h[len(h)-1]/d[len(d)-1], "HBM/DDR-latency")
	once("fig3", figSeries(last))
}

func BenchmarkFig4RandomAccess(b *testing.B) {
	p := platform()
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig4(p)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	sum := last.Series[0].Y
	b.ReportMetric(sum[len(sum)-1], "indirect-sum-speedup@12tpt")
	b.ReportMetric(last.Series[1].Y[0], "chase-speedup")
	once("fig4", figSeries(last))
}

func BenchmarkFig5aCopyPlacement(b *testing.B) {
	p := platform()
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5a(p)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	at12 := map[string]float64{}
	for _, s := range last.Series {
		at12[s.Name] = s.Y[len(s.Y)-1]
	}
	b.ReportMetric(at12["HBM→DDR"]/at12["DDR→HBM"], "HBMtoDDR/DDRtoHBM")
	once("fig5a", figSeries(last))
}

func BenchmarkFig5bAddPlacement(b *testing.B) {
	p := platform()
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5b(p)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	once("fig5b", figSeries(last))
}

func BenchmarkFig7aMGDetailed(b *testing.B) {
	p := platform()
	for i := 0; i < b.N; i++ {
		an, rows, err := experiments.Fig7a(p, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			max, _ := an.MaxSpeedup()
			b.ReportMetric(max, "max-speedup")
			s := "\n== Fig7a: MG detailed view ==\nconfig  speedup  est  hbm-usage  samples\n"
			for _, r := range rows {
				s += fmt.Sprintf("%-8s %.3f  %.3f  %.3f  %.3f\n", r.Label, r.Speedup, r.EstSpeedup, r.HBMUsage, r.Samples)
			}
			once("fig7a", s)
		}
	}
}

func summaryBench(b *testing.B, id, workload string) {
	b.Helper()
	p := platform()
	for i := 0; i < b.N; i++ {
		spec, err := experiments.SpecFor(workload)
		if err != nil {
			b.Fatal(err)
		}
		an, err := experiments.Analyze(spec, p, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			row := an.TableIIRow()
			b.ReportMetric(row.MaxSpeedup, "max-speedup")
			b.ReportMetric(row.HBMOnlySpeedup, "hbm-only-speedup")
			b.ReportMetric(row.NinetyUsage, "90pct-hbm-usage")
			fig := experiments.SummaryFigure(id, workload+" summary", an)
			once(id, figSeries(fig))
		}
	}
}

func BenchmarkFig7bMGSummary(b *testing.B) { summaryBench(b, "Fig7b", "npb.mg") }
func BenchmarkFig9MG(b *testing.B)         { summaryBench(b, "Fig9", "npb.mg") }
func BenchmarkFig10UA(b *testing.B)        { summaryBench(b, "Fig10", "npb.ua") }
func BenchmarkFig11SP(b *testing.B)        { summaryBench(b, "Fig11", "npb.sp") }
func BenchmarkFig12BT(b *testing.B)        { summaryBench(b, "Fig12", "npb.bt") }
func BenchmarkFig13LU(b *testing.B)        { summaryBench(b, "Fig13", "npb.lu") }
func BenchmarkFig14IS(b *testing.B)        { summaryBench(b, "Fig14", "npb.is") }
func BenchmarkFig15KWave(b *testing.B)     { summaryBench(b, "Fig15", "kwave") }

func BenchmarkFig8Roofline(b *testing.B) {
	p := platform()
	for i := 0; i < b.N; i++ {
		model, err := experiments.Fig8(p, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			s := "\n== Fig8: roofline ==\n"
			for _, c := range model.Ceilings {
				if c.GBps > 0 {
					s += fmt.Sprintf("ceiling %-22s %8.1f GB/s\n", c.Name, c.GBps)
				} else {
					s += fmt.Sprintf("ceiling %-22s %8.1f GFLOP/s\n", c.Name, c.GFlops)
				}
			}
			for _, pt := range model.Points {
				s += fmt.Sprintf("point   %-22s AI=%.4f  %.1f GFLOP/s\n", pt.Name, pt.AI, pt.GFlops)
			}
			once("fig8", s)
			ridge, err := model.Ridge("HBM BW")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(ridge, "HBM-ridge-AI")
		}
	}
}

func BenchmarkTable1Configs(b *testing.B) {
	p := platform()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(p, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			s := "\n== Table I: benchmark configurations ==\nworkload    mem[GB]  filtered-allocs  total-allocs\n"
			for _, r := range rows {
				s += fmt.Sprintf("%-10s  %7.2f  %15d  %12d\n", r.Workload, r.MemoryUsage.GBs(), r.FilteredAllocs, r.TotalAllocs)
			}
			once("table1", s)
		}
	}
}

func BenchmarkTable2Summary(b *testing.B) {
	p := platform()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(p, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			s := "\n== Table II: tuning summary ==\nworkload    max-speedup  hbm-only  90%-usage\n"
			for _, r := range rows {
				s += fmt.Sprintf("%-10s  %11.2f  %8.2f  %8.1f%%\n", r.Workload, r.MaxSpeedup, r.HBMOnlySpeedup, r.NinetyUsage*100)
			}
			once("table2", s)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks: design choices DESIGN.md calls out.
// ---------------------------------------------------------------------

// BenchmarkAblationLinearEstimator measures the accuracy of the paper's
// independence assumption (§III-A): mean absolute relative error of the
// linear combination estimate against measured speedups, across all
// multi-group configurations of every benchmark.
func BenchmarkAblationLinearEstimator(b *testing.B) {
	p := platform()
	for i := 0; i < b.N; i++ {
		var sumErr float64
		var n int
		for _, spec := range experiments.Specs() {
			an, err := experiments.Analyze(spec, p, true)
			if err != nil {
				b.Fatal(err)
			}
			for _, cfg := range an.Configs {
				if len(cfg.Groups) < 2 {
					continue
				}
				e := cfg.EstSpeedup/cfg.Speedup - 1
				if e < 0 {
					e = -e
				}
				sumErr += e
				n++
			}
		}
		if i == b.N-1 {
			b.ReportMetric(sumErr/float64(n)*100, "mean-abs-rel-err-%")
			once("abl-est", fmt.Sprintf("\n== Ablation: linear estimator error over %d combo configs: %.2f%% ==\n",
				n, sumErr/float64(n)*100))
		}
	}
}

// BenchmarkAblationGroupBudget compares the paper's 8-group budget with
// a 4-group budget on UA (56 allocations): how much of the achievable
// speedup the coarser configuration space loses.
func BenchmarkAblationGroupBudget(b *testing.B) {
	p := platform()
	for i := 0; i < b.N; i++ {
		spec, err := experiments.SpecFor("npb.ua")
		if err != nil {
			b.Fatal(err)
		}
		opts8 := spec.Options
		opts8.Platform = p
		an8, err := core.New(spec.Fast(), opts8).Analyze()
		if err != nil {
			b.Fatal(err)
		}
		opts4 := spec.Options
		opts4.Platform = p
		opts4.MaxGroups = 4
		an4, err := core.New(spec.Fast(), opts4).Analyze()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			m8, _ := an8.MaxSpeedup()
			m4, _ := an4.MaxSpeedup()
			b.ReportMetric(m8, "max-8-groups")
			b.ReportMetric(m4, "max-4-groups")
			once("abl-groups", fmt.Sprintf("\n== Ablation: UA max speedup with 8 groups %.3fx vs 4 groups %.3fx ==\n", m8, m4))
		}
	}
}

// BenchmarkAblationNoise sweeps the measurement-noise level and reports
// how often 3-run averaging misranks two adjacent MG configurations —
// the paper's reason for averaging over n runs per configuration.
func BenchmarkAblationNoise(b *testing.B) {
	p := platform()
	for i := 0; i < b.N; i++ {
		spec, err := experiments.SpecFor("npb.mg")
		if err != nil {
			b.Fatal(err)
		}
		var out string
		for _, runs := range []int{1, 3, 9} {
			opts := spec.Options
			opts.Platform = p
			opts.Runs = runs
			misranks := 0
			const trials = 5
			for trial := 0; trial < trials; trial++ {
				opts.Seed = uint64(1000 + trial)
				an, err := core.New(spec.Fast(), opts).Analyze()
				if err != nil {
					b.Fatal(err)
				}
				// Ground truth on MG: solo(u) > solo(r) > solo(v).
				if !(an.Groups[0].SoloSpeedup >= an.Groups[1].SoloSpeedup &&
					an.Groups[1].SoloSpeedup >= an.Groups[2].SoloSpeedup) {
					misranks++
				}
			}
			out += fmt.Sprintf("runs=%d misrank-rate=%d/%d\n", runs, misranks, trials)
		}
		if i == b.N-1 {
			once("abl-noise", "\n== Ablation: run-count vs ranking stability (MG) ==\n"+out)
		}
	}
}

// ---------------------------------------------------------------------
// Sweep-engine benchmarks: the hot path under every figure and table.
// ---------------------------------------------------------------------

// sweepBenchSetup runs the npb.bt reduced instance once and returns its
// machine, trace, and tuned allocation groups — the paper's 8-group /
// 256-configuration sweep shape.
func sweepBenchSetup(b *testing.B) (*memsim.Machine, *trace.Trace, []core.Group) {
	b.Helper()
	spec, err := experiments.SpecFor("npb.bt")
	if err != nil {
		b.Fatal(err)
	}
	an, err := experiments.Analyze(spec, platform(), true)
	if err != nil {
		b.Fatal(err)
	}
	w := spec.Fast()
	env := workloads.NewEnv(0, 1, 1)
	if err := w.Setup(env); err != nil {
		b.Fatal(err)
	}
	if err := w.Run(env); err != nil {
		b.Fatal(err)
	}
	return memsim.NewMachine(platform()), env.Rec.Trace(), an.Groups
}

func sweepBenchPlacement(p *memsim.Platform, groups []core.Group, mask uint32) *memsim.SimplePlacement {
	pl := memsim.NewSimplePlacement(len(p.Pools), p.MustPool(memsim.DDR))
	hbm := p.MustPool(memsim.HBM)
	for gi := range groups {
		if mask&(1<<uint(gi)) == 0 {
			continue
		}
		for _, id := range groups[gi].Allocs {
			pl.Set(id, hbm)
		}
	}
	return pl
}

// BenchmarkSweepEngine compares one full 2^|AG| deterministic sweep on
// the compiled engine (including compilation, Gray-code incremental
// evaluation) against the naive path costing every mask from scratch.
// The "naive/engine-speedup" metric is the per-sweep ratio.
func BenchmarkSweepEngine(b *testing.B) {
	m, tr, groups := sweepBenchSetup(b)
	ddr := m.P.MustPool(memsim.DDR)
	hbm := m.P.MustPool(memsim.HBM)
	sets := make([][]shim.AllocID, len(groups))
	for gi := range groups {
		sets[gi] = groups[gi].Allocs
	}
	nMasks := uint32(1) << uint(len(groups))
	var sink units.Duration

	var engineNs, naiveNs float64
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev, err := m.CompileSweep(tr, 0, sets, ddr)
			if err != nil {
				b.Fatal(err)
			}
			det := ev.EvalMask(0, ddr, hbm)
			for g := uint32(1); g < nMasks; g++ {
				bit := bits.TrailingZeros32(g)
				mask := g ^ (g >> 1)
				to := ddr
				if mask&(1<<uint(bit)) != 0 {
					to = hbm
				}
				det = ev.Flip(bit, to)
			}
			sink += det
		}
		engineNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for mask := uint32(0); mask < nMasks; mask++ {
				res, err := m.Cost(tr, sweepBenchPlacement(m.P, groups, mask), 0, nil)
				if err != nil {
					b.Fatal(err)
				}
				sink += res.Time
			}
		}
		naiveNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if engineNs > 0 && naiveNs > 0 {
		once("sweep-engine", fmt.Sprintf("\n== SweepEngine: %d masks, naive %.2fms vs engine %.3fms: %.0fx ==\n",
			nMasks, naiveNs/1e6, engineNs/1e6, naiveNs/engineNs))
	}
	_ = sink
}

// BenchmarkCostAllocs measures allocation behaviour of the two costing
// paths with testing.AllocsPerRun: the engine's sweep inner loop (flip +
// full mask evaluation) must be allocation-free, and the legacy
// Machine.Cost path must stay flat (per-call scratch, not per-stream).
func BenchmarkCostAllocs(b *testing.B) {
	m, tr, groups := sweepBenchSetup(b)
	ddr := m.P.MustPool(memsim.DDR)
	hbm := m.P.MustPool(memsim.HBM)
	sets := make([][]shim.AllocID, len(groups))
	for gi := range groups {
		sets[gi] = groups[gi].Allocs
	}
	ev, err := m.CompileSweep(tr, 0, sets, ddr)
	if err != nil {
		b.Fatal(err)
	}
	var sink units.Duration
	sweepAllocs := testing.AllocsPerRun(100, func() {
		sink += ev.Flip(3, hbm)
		sink += ev.Flip(3, ddr)
		sink += ev.EvalMask(0x55, ddr, hbm)
	})
	pl := sweepBenchPlacement(m.P, groups, 0x55)
	costAllocs := testing.AllocsPerRun(100, func() {
		res, err := m.Cost(tr, pl, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		sink += res.Time
	})
	b.ReportMetric(sweepAllocs, "sweep-allocs/op")
	b.ReportMetric(costAllocs, "cost-allocs/op")
	if sweepAllocs != 0 {
		b.Errorf("sweep inner loop allocates %.1f allocs/op, want 0", sweepAllocs)
	}
	for i := 0; i < b.N; i++ {
		sink += ev.EvalMask(uint32(i)&(1<<uint(len(groups))-1), ddr, hbm)
	}
	_ = sink
}

// BenchmarkCampaignMatrix measures the campaign engine on the full
// benchmark set × both platform presets (14 cells from 7 reference
// captures) against the naive path that re-executes every cell's kernel
// through a live Tuner.Analyze. The engine executes each kernel once
// per matrix; "kernels-saved" is the per-sweep reduction in real kernel
// executions.
func BenchmarkCampaignMatrix(b *testing.B) {
	matrix := experiments.CampaignMatrix(platform(), true)
	matrix.Platforms = append(matrix.Platforms,
		campaign.Platform{Name: "dual", Platform: memsim.DualXeonMax9468()})
	cells := len(matrix.Workloads) * len(matrix.Platforms)

	var engineNs, naiveNs float64
	var saved int64
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			before := core.KernelExecutions()
			res, err := (&campaign.Engine{}).Run(matrix)
			if err != nil {
				b.Fatal(err)
			}
			if err := res.Err(); err != nil {
				b.Fatal(err)
			}
			saved = int64(cells) - (core.KernelExecutions() - before)
		}
		b.ReportMetric(float64(saved), "kernels-saved")
		engineNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range matrix.Workloads {
				for _, p := range matrix.Platforms {
					opts := w.Options
					opts.Platform = p.Platform
					if _, err := core.New(w.Factory(), opts).Analyze(); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		naiveNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if engineNs > 0 && naiveNs > 0 {
		once("campaign", fmt.Sprintf("\n== Campaign: %d cells, naive %.1fms vs engine %.1fms (%.2fx), %d kernel executions saved per matrix ==\n",
			cells, naiveNs/1e6, engineNs/1e6, naiveNs/engineNs, saved))
	}
}

// BenchmarkReplayContextReuse compares replaying one captured reference
// run many times the per-replay way (each replay re-restores the
// registry, re-copies the trace, re-reconstructs the sampling report
// and re-compiles both sweep evaluators) against the shared-context way
// (one core.ReplayContext, built once, cloned evaluators per replay).
// The two paths are byte-identical (context_equiv_test.go); this
// benchmark measures what the sharing is worth per campaign cell.
func BenchmarkReplayContextReuse(b *testing.B) {
	spec, err := experiments.SpecFor("npb.bt")
	if err != nil {
		b.Fatal(err)
	}
	opts := spec.Options
	opts.Platform = platform()
	snap, err := core.Capture(spec.Fast(), opts)
	if err != nil {
		b.Fatal(err)
	}

	var freshNs, sharedNs float64
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewReplay(snap, opts).Analyze(); err != nil {
				b.Fatal(err)
			}
		}
		freshNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("shared", func(b *testing.B) {
		ctx, err := core.NewContext(snap)
		if err != nil {
			b.Fatal(err)
		}
		// Prime the context's memos so the steady state is measured —
		// cell 2..N of a campaign, not cell 1.
		if _, err := core.NewContextReplay(ctx, opts).Analyze(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewContextReplay(ctx, opts).Analyze(); err != nil {
				b.Fatal(err)
			}
		}
		sharedNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if freshNs > 0 && sharedNs > 0 {
			b.ReportMetric(freshNs/sharedNs, "fresh/shared-speedup")
			once("ctx-reuse", fmt.Sprintf("\n== ReplayContextReuse: per-replay %.3fms vs shared context %.3fms per cell: %.2fx ==\n",
				freshNs/1e6, sharedNs/1e6, freshNs/sharedNs))
		}
	})
}

// BenchmarkWarmCampaignPlacementFree is PR 4's headline: with the
// process-wide experiments memo warm, regenerating Table II serves
// every cell straight from the analysis cache — zero kernel executions,
// zero sampling passes, zero probe/sweep placement passes (all three
// counters gated) — and one warm regeneration must run at least 2x
// faster than PR 3's ~2.1 ms/op warm baseline (gated at 1.05 ms/op).
func BenchmarkWarmCampaignPlacementFree(b *testing.B) {
	p := platform()
	if _, err := experiments.Table2(p, true); err != nil {
		b.Fatal(err) // cold fill of the shared memo
	}
	kernels := core.KernelExecutions()
	samples := core.SamplePasses()
	sweeps := core.SweepEvaluations()
	warmNs := minSampleNs(b, 5, func(uint64) {
		if _, err := experiments.Table2(p, true); err != nil {
			b.Fatal(err)
		}
	})
	if got := core.KernelExecutions() - kernels; got != 0 {
		b.Errorf("warm Table II executed %d kernels, want 0", got)
	}
	if got := core.SamplePasses() - samples; got != 0 {
		b.Errorf("warm Table II ran %d sampling passes, want 0", got)
	}
	if got := core.SweepEvaluations() - sweeps; got != 0 {
		b.Errorf("warm Table II ran %d probe/sweep placement passes, want 0", got)
	}
	const gateNs = 1.05e6 // 2x over the PR 3 warm baseline of ~2.1 ms
	if warmNs > gateNs {
		b.Errorf("warm Table II takes %.3f ms/op, gate is %.2f ms (2x over the PR 3 ~2.1 ms baseline)",
			warmNs/1e6, gateNs/1e6)
	}
	once("warm-campaign", fmt.Sprintf("\n== WarmCampaignPlacementFree: warm Table II %.3fms/op, 0 kernels / 0 sampling / 0 placement passes ==\n",
		warmNs/1e6))
	// Exclude the cold fill and the gating samples above: ns/op must
	// record the warm op itself, or the BENCH_prN.json trajectory would
	// misreport the headline by the cold cost at -benchtime=1x.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(p, true); err != nil {
			b.Fatal(err)
		}
	}
	// After the timed loop: ResetTimer also clears previously-reported
	// custom metrics, so the headline metric must be (re-)reported here
	// to reach the output and the JSON artifact.
	b.ReportMetric(warmNs/1e6, "warm-table2-ms")
}

// ---------------------------------------------------------------------
// Sampling-engine benchmarks: the IBS pass under every analysis.
// ---------------------------------------------------------------------

// ibsBenchSetup runs the npb.bt reduced instance once and returns the
// allocator, trace and machine a sampling pass needs.
func ibsBenchSetup(b *testing.B) (*shim.Allocator, *trace.Trace, *memsim.Machine) {
	b.Helper()
	spec, err := experiments.SpecFor("npb.bt")
	if err != nil {
		b.Fatal(err)
	}
	w := spec.Fast()
	env := workloads.NewEnv(0, 1, 1)
	if err := w.Setup(env); err != nil {
		b.Fatal(err)
	}
	if err := w.Run(env); err != nil {
		b.Fatal(err)
	}
	return env.Alloc, env.Rec.Trace(), memsim.NewMachine(platform())
}

// minSampleNs times fn over a fixed number of repetitions and returns
// the fastest, so the gate ratio below never depends on -benchtime (at
// 1x in CI a single cold iteration would leave the threshold almost no
// noise headroom).
func minSampleNs(b *testing.B, reps int, fn func(seed uint64)) float64 {
	b.Helper()
	best := math.MaxFloat64
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn(uint64(i) + 1)
		if ns := float64(time.Since(start).Nanoseconds()); ns < best {
			best = ns
		}
	}
	return best
}

// BenchmarkIBSSample compares the batched sampling engine against the
// per-sample reference loop on the BT trace under the all-DDR reference
// placement. The engine must be at least 20× faster (it is
// O(streams × pools) where the reference is O(samples)) and its
// per-stream loop must not allocate: sampling a trace with 8× the
// phases must cost exactly the same allocations as sampling the
// original. Both gates fail the benchmark, like BenchmarkCostAllocs,
// and both are evaluated in the "gates" sub-benchmark — metrics
// reported on a parent that calls b.Run never reach the output.
func BenchmarkIBSSample(b *testing.B) {
	al, tr, m := ibsBenchSetup(b)
	pl := memsim.NewSimplePlacement(len(m.P.Pools), m.P.MustPool(memsim.DDR))
	s := ibs.NewSampler()
	var total int
	// Scoped per top-level invocation (fresh for each -count/-cpu run)
	// while still deduplicating the "gates" sub-benchmark's b.N ramp-up.
	var gates struct {
		once       sync.Once
		speedup    float64
		allocDelta float64
	}

	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := s.Sample(tr, al, m, pl, xrand.New(uint64(i)+1))
			if err != nil {
				b.Fatal(err)
			}
			total = rep.Total
		}
		b.ReportMetric(float64(total), "samples")
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.SampleReference(tr, al, m, pl, xrand.New(uint64(i)+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
		}
		// The framework re-invokes the body while ramping b.N; the gate
		// measurements are expensive (13 sampling passes + AllocsPerRun
		// on an 8x trace), so compute them once and re-report the cached
		// values on every invocation — the final one is what prints.
		gates.once.Do(func() {
			engineNs := minSampleNs(b, 10, func(seed uint64) {
				if _, err := s.Sample(tr, al, m, pl, xrand.New(seed)); err != nil {
					b.Fatal(err)
				}
			})
			refNs := minSampleNs(b, 3, func(seed uint64) {
				if _, err := s.SampleReference(tr, al, m, pl, xrand.New(seed)); err != nil {
					b.Fatal(err)
				}
			})
			gates.speedup = refNs / engineNs
			once("ibs-sample", fmt.Sprintf("\n== IBSSample: %d samples, reference %.3fms vs engine %.4fms: %.0fx ==\n",
				total, refNs/1e6, engineNs/1e6, gates.speedup))

			// Allocation gate: the engine's per-phase/per-stream loop
			// must be allocation-free, so allocations cannot grow with
			// trace length.
			tr8 := &trace.Trace{}
			for i := 0; i < 8; i++ {
				tr8.Phases = append(tr8.Phases, tr.Phases...)
			}
			allocs1 := testing.AllocsPerRun(10, func() {
				if _, err := s.Sample(tr, al, m, pl, xrand.New(1)); err != nil {
					b.Fatal(err)
				}
			})
			allocs8 := testing.AllocsPerRun(10, func() {
				if _, err := s.Sample(tr8, al, m, pl, xrand.New(1)); err != nil {
					b.Fatal(err)
				}
			})
			gates.allocDelta = allocs8 - allocs1
		})
		b.ReportMetric(gates.speedup, "reference/engine-speedup")
		b.ReportMetric(gates.allocDelta, "per-stream-allocs/op")
		if gates.speedup < 20 {
			b.Errorf("batched engine only %.1fx faster than the per-sample reference, want >= 20x", gates.speedup)
		}
		if gates.allocDelta > 0 {
			b.Errorf("engine allocates in the per-stream loop: %.1f extra allocs on an 8x trace", gates.allocDelta)
		}
	})
}

// BenchmarkOnlineTuning runs the dynamic extension (§III "online
// profiling and control"): greedy migration converging toward the
// offline optimum without measuring the exhaustive configuration space.
func BenchmarkOnlineTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.TuneOnline(synth.Default(), core.OnlineOptions{Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.FinalSpeedup, "final-speedup")
			b.ReportMetric(float64(len(res.Epochs)), "epochs")
			b.ReportMetric(res.AmortisationEpochs, "amortisation-epochs")
			s := "\n== Online tuning (synth) ==\n"
			for _, e := range res.Epochs {
				s += fmt.Sprintf("epoch %d: moved %-12q speedup %.3f hbm %v migration %v\n",
					e.Epoch, e.Moved, e.Speedup, e.HBMUsed, e.MigrationCost)
			}
			once("online", s)
		}
	}
}

// ---------------------------------------------------------------------
// Phase-deduplication benchmarks: the O(unique phases) contract.
// ---------------------------------------------------------------------

// dedupBenchTrace runs the npb.bt reduced instance at the given
// iteration count and returns the raw recorded trace, its canonical
// deduplicated form (what the pipeline actually consumes), and the
// environment.
func dedupBenchTrace(b *testing.B, iters int) (raw, canonical *trace.Trace, env *workloads.Env) {
	b.Helper()
	spec, err := experiments.SpecFor("npb.bt")
	if err != nil {
		b.Fatal(err)
	}
	w := spec.Fast()
	env = workloads.NewEnv(0, 1, 1)
	env.Iterations = iters
	if err := w.Setup(env); err != nil {
		b.Fatal(err)
	}
	if err := w.Run(env); err != nil {
		b.Fatal(err)
	}
	raw = env.Rec.Trace()
	return raw, raw.Canonical(), env
}

// sweep256 compiles the trace and walks all 256 masks in Gray-code
// order, returning the elapsed wall time of the best of reps runs.
func sweep256(b *testing.B, m *memsim.Machine, tr *trace.Trace, sets [][]shim.AllocID, reps int) float64 {
	b.Helper()
	ddr := m.P.MustPool(memsim.DDR)
	hbm := m.P.MustPool(memsim.HBM)
	var sink units.Duration
	ns := minSampleNs(b, reps, func(uint64) {
		ev, err := m.CompileSweep(tr, 0, sets, ddr)
		if err != nil {
			b.Fatal(err)
		}
		det := ev.EvalMask(0, ddr, hbm)
		for g := uint32(1); g < 256; g++ {
			bit := bits.TrailingZeros32(g)
			mask := g ^ (g >> 1)
			to := ddr
			if mask&(1<<uint(bit)) != 0 {
				to = hbm
			}
			det = ev.Flip(bit, to)
		}
		sink += det
	})
	_ = sink
	return ns
}

// BenchmarkDedupSweep is the tentpole's sweep gate: a 256-mask sweep
// over the canonical trace of a 10x-iteration BT run must cost within
// 1.3x of the 1x-iteration sweep — the phase count, and therefore the
// compile and per-mask work, is identical; only the repeat multipliers
// differ. The raw (pre-dedup) 10x sweep is reported for scale.
func BenchmarkDedupSweep(b *testing.B) {
	_, can1, _ := dedupBenchTrace(b, 0) // fast-instance default: 3 iterations
	raw10, can10, _ := dedupBenchTrace(b, 30)
	m := memsim.NewMachine(platform())
	// An 8-group partition in the paper's sweep shape: the analysis
	// groups of the 1x run (allocation IDs are identical across runs —
	// same Setup in a fresh environment).
	spec, err := experiments.SpecFor("npb.bt")
	if err != nil {
		b.Fatal(err)
	}
	an, err := experiments.Analyze(spec, platform(), true)
	if err != nil {
		b.Fatal(err)
	}
	sets := make([][]shim.AllocID, len(an.Groups))
	for gi := range an.Groups {
		sets[gi] = an.Groups[gi].Allocs
	}

	ns1 := sweep256(b, m, can1, sets, 5)
	ns10 := sweep256(b, m, can10, sets, 5)
	nsRaw10 := sweep256(b, m, raw10, sets, 3)
	b.ReportMetric(float64(len(raw10.Phases)), "raw-phases")
	b.ReportMetric(float64(len(can10.Phases)), "dedup-phases")
	b.ReportMetric(ns10/ns1, "10x/1x-sweep-ratio")
	b.ReportMetric(nsRaw10/ns10, "raw/dedup-sweep-ratio")
	if ratio := ns10 / ns1; ratio > 1.3 {
		b.Errorf("256-mask sweep over the 10x-iteration canonical trace costs %.2fx the 1x sweep, gate is 1.3x", ratio)
	}
	once("dedup-sweep", fmt.Sprintf("\n== DedupSweep: 10x-iteration BT trace %d raw phases -> %d canonical; 256-mask sweep %.3fms (1x %.3fms, raw-10x %.3fms) ==\n",
		len(raw10.Phases), len(can10.Phases), ns10/1e6, ns1/1e6, nsRaw10/1e6))
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkDedupSnapshotSize gates the snapshot-size half of the
// tentpole: the canonical capture of a 10x-iteration BT run must encode
// at least 3x smaller than the same capture carrying the raw phase
// sequence (what the pre-dedup pipeline stored).
func BenchmarkDedupSnapshotSize(b *testing.B) {
	spec, err := experiments.SpecFor("npb.bt")
	if err != nil {
		b.Fatal(err)
	}
	opts := spec.Options
	opts.Iterations = 30 // 10x the fast instance's 3
	snap, err := core.Capture(spec.Fast(), opts)
	if err != nil {
		b.Fatal(err)
	}
	canonical, err := snap.EncodeBytes()
	if err != nil {
		b.Fatal(err)
	}
	raw10, _, env := dedupBenchTrace(b, 30)
	rawSnap := &trace.Snapshot{Meta: snap.Meta, Registry: env.Alloc.Export(), Trace: raw10, Samples: snap.Samples}
	raw, err := rawSnap.EncodeBytes()
	if err != nil {
		b.Fatal(err)
	}
	ratio := float64(len(raw)) / float64(len(canonical))
	b.ReportMetric(float64(len(canonical)), "dedup-bytes")
	b.ReportMetric(float64(len(raw)), "raw-bytes")
	b.ReportMetric(ratio, "raw/dedup-size")
	if ratio < 3 {
		b.Errorf("canonical 10x-iteration snapshot is only %.2fx smaller than the raw encoding (%d vs %d bytes), gate is 3x",
			ratio, len(canonical), len(raw))
	}
	once("dedup-snap", fmt.Sprintf("\n== DedupSnapshotSize: 10x-iteration BT capture %d bytes canonical vs %d raw (%.1fx) ==\n",
		len(canonical), len(raw), ratio))
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkColdReplay10x isolates the cold post-kernel pipeline at
// paper-scale iteration counts: one 10x-iteration BT capture, then
// fresh (context-free, cache-free) replays — registry restore, report
// reconstruction, grouping, probes and the 256-mask sweep all cold,
// zero kernel executions. PR 4's pipeline measured ~1.7 ms/op here (180
// trace phases); the deduplicated pipeline ~0.37 ms/op (6 phases,
// ~4.5x) on the 1-core reference container. Gated at 0.9 ms — roughly
// half the PR 4 cost with headroom for runner noise.
func BenchmarkColdReplay10x(b *testing.B) {
	spec, err := experiments.SpecFor("npb.bt")
	if err != nil {
		b.Fatal(err)
	}
	opts := spec.Options
	opts.Iterations = 30 // 10x the fast instance's 3
	snap, err := core.Capture(spec.Fast(), opts)
	if err != nil {
		b.Fatal(err)
	}
	ns := minSampleNs(b, 5, func(uint64) {
		if _, err := core.NewReplay(snap, opts).Analyze(); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportMetric(ns/1e6, "cold-replay-ms")
	b.ReportMetric(float64(len(snap.Trace.Phases)), "phases")
	const gateNs = 0.9e6
	if ns > gateNs {
		b.Errorf("cold 10x-iteration replay takes %.3f ms/op, gate is %.1f ms (PR 4 baseline was ~1.7 ms)", ns/1e6, gateNs/1e6)
	}
	once("cold-replay", fmt.Sprintf("\n== ColdReplay10x: kernel-free 10x-iteration BT analysis %.3fms/op over %d phases ==\n",
		ns/1e6, len(snap.Trace.Phases)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewReplay(snap, opts).Analyze(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ns/1e6, "cold-replay-ms")
}

// BenchmarkColdTable2 measures the fully cold Table II regeneration — a
// fresh campaign engine with no memo and no caches, every kernel
// executed, every cell analysed from scratch. Profiling shows this cost
// is almost entirely real kernel arithmetic at the default iteration
// counts (~41 ms/op on the 1-core reference container, unchanged from
// PR 4 within noise — the post-kernel stages dedup accelerates were
// already ~1 ms of it; BenchmarkColdReplay10x is where the cold win is
// visible). Gated at a generous 100 ms absolute bound (~2.4x headroom) so a real cold
// regression fails CI without flaking on runner noise.
func BenchmarkColdTable2(b *testing.B) {
	p := platform()
	matrix := experiments.CampaignMatrix(p, true)
	coldNs := minSampleNs(b, 3, func(uint64) {
		res, err := (&campaign.Engine{}).Run(matrix)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Table2Campaign(res); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportMetric(coldNs/1e6, "cold-table2-ms")
	const gateNs = 100e6 // ~2.4x over the ~41 ms reference-container cost
	if coldNs > gateNs {
		b.Errorf("cold Table II takes %.1f ms/op, gate is %.0f ms", coldNs/1e6, gateNs/1e6)
	}
	once("cold-table2", fmt.Sprintf("\n== ColdTable2: fully cold Table II campaign %.1fms/op ==\n", coldNs/1e6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := (&campaign.Engine{}).Run(matrix)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Table2Campaign(res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(coldNs/1e6, "cold-table2-ms")
}

// BenchmarkColdTable2Workers measures the cold Table II campaign at
// pinned worker counts and reports throughput as cells/sec — the
// measured multi-core scaling curve of the bench trajectory. Every run
// is fully cold (fresh engine, no memo, no caches), so the workers fan
// out over real kernel executions and analyses. On the 1-core reference
// container the curve is honestly flat (GOMAXPROCS=1 serialises the
// goroutines); the >1.5x-at-4-workers expectation is enforced by the CI
// multi-core scaling job, which runs this same benchmark on a larger
// runner.
func BenchmarkColdTable2Workers(b *testing.B) {
	p := platform()
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			matrix := experiments.CampaignMatrix(p, true)
			cells := len(matrix.Workloads) * len(matrix.Platforms)
			run := func() {
				res, err := (&campaign.Engine{Parallelism: workers}).Run(matrix)
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
			}
			coldNs := minSampleNs(b, 3, func(uint64) { run() })
			once(fmt.Sprintf("cold-table2-w%d", workers),
				fmt.Sprintf("\n== ColdTable2Workers/w%d: %d cells in %.1fms (%.1f cells/sec) ==\n",
					workers, cells, coldNs/1e6, float64(cells)/(coldNs/1e9)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
			b.ReportMetric(float64(cells)/(coldNs/1e9), "cells/sec")
		})
	}
}

// BenchmarkDeriveSnapshot compares synthesizing a high-iteration BT
// capture from a family base (trace rewrite + deterministic count pass,
// zero kernel executions) against really capturing it — the per-member
// saving the campaign planner banks for every non-base cell of an
// iteration sweep.
func BenchmarkDeriveSnapshot(b *testing.B) {
	spec, err := experiments.SpecFor("npb.bt")
	if err != nil {
		b.Fatal(err)
	}
	base, err := core.Capture(spec.Fast(), spec.Options)
	if err != nil {
		b.Fatal(err)
	}
	opts := spec.Options
	opts.Iterations = 30 // 10x the fast instance's 3

	deriveNs := minSampleNs(b, 5, func(uint64) {
		if _, err := core.DeriveSnapshot(base, spec.Fast(), opts); err != nil {
			b.Fatal(err)
		}
	})
	captureNs := minSampleNs(b, 3, func(uint64) {
		if _, err := core.Capture(spec.Fast(), opts); err != nil {
			b.Fatal(err)
		}
	})
	once("derive-snap", fmt.Sprintf("\n== DeriveSnapshot: 10x-iteration BT derive %.3fms vs capture %.3fms: %.0fx ==\n",
		deriveNs/1e6, captureNs/1e6, captureNs/deriveNs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DeriveSnapshot(base, spec.Fast(), opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(captureNs/deriveNs, "capture/derive-speedup")
}

// BenchmarkSeedSweep measures the seed axis of derivation end to end: a
// cold 8-seed BT campaign on a fresh engine resolves one real kernel
// and synthesizes the other seven seeds' snapshots, versus the pre-seed-
// derivation shape of the same sweep — eight single-seed engines that
// each execute their own kernel. Counter-gated: the engine sweep must
// run exactly one kernel (seven seed derivations), and must beat the
// per-seed-kernel baseline by the CI floor below.
func BenchmarkSeedSweep(b *testing.B) {
	spec, err := experiments.SpecFor("npb.bt")
	if err != nil {
		b.Fatal(err)
	}
	const seeds = 8
	matrix := campaign.Matrix{
		Workloads: []campaign.Workload{{Name: spec.Name, Factory: spec.Fast, Options: spec.Options}},
		Platforms: []campaign.Platform{{Name: "xeonmax", Platform: platform()}},
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		seed := seed
		matrix.Variants = append(matrix.Variants, campaign.Variant{
			Name:  fmt.Sprintf("seed%d", seed),
			Apply: func(o *core.Options) { o.Seed = seed },
		})
	}
	sweep := func() {
		res, err := (&campaign.Engine{}).Run(matrix)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Err(); err != nil {
			b.Fatal(err)
		}
		if res.Executions != 1 || res.Derived != seeds-1 || res.SeedDerived != seeds-1 {
			b.Errorf("sweep ran %d kernels / %d derived / %d across seeds, want 1/%d/%d",
				res.Executions, res.Derived, res.SeedDerived, seeds-1, seeds-1)
		}
	}

	const reps = 3
	kernels := core.KernelExecutions()
	sweepNs := minSampleNs(b, reps, func(uint64) { sweep() })
	if got := core.KernelExecutions() - kernels; got != reps {
		b.Errorf("%d cold sweeps executed %d kernels, want exactly one each", reps, got)
	}
	perSeedNs := minSampleNs(b, reps, func(uint64) {
		// The baseline sweeps seed-by-seed on fresh single-cell engines:
		// identical analysis work, but no family sibling to derive from,
		// so every seed pays its own kernel.
		for seed := uint64(1); seed <= seeds; seed++ {
			single := matrix
			single.Variants = []campaign.Variant{matrix.Variants[seed-1]}
			res, err := (&campaign.Engine{}).Run(single)
			if err != nil {
				b.Fatal(err)
			}
			if err := res.Err(); err != nil {
				b.Fatal(err)
			}
			if res.Executions != 1 {
				b.Errorf("per-seed baseline ran %d kernels for seed %d, want 1", res.Executions, seed)
			}
		}
	})
	speedup := perSeedNs / sweepNs
	const gate = 4.0
	if speedup < gate {
		b.Errorf("8-seed sweep is %.1fx the per-seed baseline, gate is %.0fx", speedup, gate)
	}
	once("seed-sweep", fmt.Sprintf("\n== SeedSweep: 8-seed cold BT campaign %.1fms (1 kernel, 7 seed derivations) vs per-seed kernels %.1fms: %.1fx ==\n",
		sweepNs/1e6, perSeedNs/1e6, speedup))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep()
	}
	b.ReportMetric(speedup, "per-seed/sweep-speedup")
}

// ---------------------------------------------------------------------
// Serving-layer benchmark: the hmptd warm path end to end.
// ---------------------------------------------------------------------

// BenchmarkDaemonWarmServe boots an in-process hmptd, fills its caches
// with one pass over the Table I mix, then measures a warm closed-loop
// burst through the HTTP stack. The burst is counter-gated like the
// daemon-smoke CI job: a warm daemon must serve it with zero kernels,
// zero sampling passes, zero placement passes and zero derived
// snapshots. ns/op times a single warm /v1/analyze round trip; the
// loadgen percentiles and throughput land as custom metrics.
func BenchmarkDaemonWarmServe(b *testing.B) {
	s, err := server.New(server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mix := server.DefaultLoadWorkloads()
	warmup, err := server.RunLoad(server.LoadConfig{
		BaseURL: ts.URL, Clients: 2, Requests: len(mix), Workloads: mix,
	})
	if err != nil {
		b.Fatal(err)
	}
	if warmup.Errors != 0 {
		b.Fatalf("warm-up burst saw %d errors (first: %s)", warmup.Errors, warmup.FirstError)
	}

	kernels := core.KernelExecutions()
	samples := core.SamplePasses()
	sweeps := core.SweepEvaluations()
	derived := core.DerivedSnapshots()
	rep, err := server.RunLoad(server.LoadConfig{
		BaseURL: ts.URL, Clients: 4, Requests: 64, Workloads: mix,
	})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors != 0 {
		b.Fatalf("warm burst saw %d errors (first: %s)", rep.Errors, rep.FirstError)
	}
	if got := core.KernelExecutions() - kernels; got != 0 {
		b.Errorf("warm burst executed %d kernels, want 0", got)
	}
	if got := core.SamplePasses() - samples; got != 0 {
		b.Errorf("warm burst ran %d sampling passes, want 0", got)
	}
	if got := core.SweepEvaluations() - sweeps; got != 0 {
		b.Errorf("warm burst ran %d placement passes, want 0", got)
	}
	if got := core.DerivedSnapshots() - derived; got != 0 {
		b.Errorf("warm burst derived %d snapshots, want 0", got)
	}
	once("daemon-warm", fmt.Sprintf("\n== DaemonWarmServe: %.0f req/sec over %d clients, p50 %.3fms p95 %.3fms p99 %.3fms, 0 kernels / 0 sampling / 0 placement / 0 derived ==\n",
		rep.Throughput, rep.Clients, rep.P50Ms, rep.P95Ms, rep.P99Ms))

	body := []byte(`{"workload":"npb.mg"}`)
	client := &http.Client{}
	// Time the single warm round trip only — the cold fill and the
	// gated burst above must not leak into ns/op at -benchtime=1x.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	// ResetTimer clears previously-reported custom metrics: report the
	// headline numbers after the timed loop so they reach the JSON
	// trajectory (bench/BENCH_pr7.json).
	b.ReportMetric(rep.Throughput, "req/sec")
	b.ReportMetric(rep.P50Ms, "p50-ms")
	b.ReportMetric(rep.P95Ms, "p95-ms")
	b.ReportMetric(rep.P99Ms, "p99-ms")
}

// BenchmarkShardedCampaign prices the crash-safe shard coordinator:
// plan a cold campaign into a shard directory, race three in-process
// workers over the lease/journal protocol, and merge. The cells/sec
// metric is directly comparable to BenchmarkColdTable2Workers — the
// gap between the two is the cost of durable leases, sealed journal
// records and the merge fold.
func BenchmarkShardedCampaign(b *testing.B) {
	spec := experiments.CampaignSpec{Workloads: []string{"all"}, Platforms: []string{"xeonmax"}}
	m, err := spec.Matrix()
	if err != nil {
		b.Fatal(err)
	}
	cells := len(m.Workloads) * len(m.Platforms)
	const workers = 3
	run := func() {
		dir := b.TempDir()
		if _, err := shard.Plan(dir, spec); err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for i := 0; i < workers; i++ {
			w, err := shard.NewWorker(dir, shard.WorkerOptions{
				ID:   fmt.Sprintf("bench%d", i),
				TTL:  5 * time.Second,
				Poll: 2 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = w.Run(context.Background())
			}(i)
		}
		wg.Wait()
		for i := range errs {
			if errs[i] != nil {
				b.Fatal(errs[i])
			}
		}
		merged, err := shard.Merge(dir, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !merged.Complete {
			b.Fatal("sharded campaign did not complete")
		}
		if err := merged.Result.Err(); err != nil {
			b.Fatal(err)
		}
	}
	coldNs := minSampleNs(b, 3, func(uint64) { run() })
	once("sharded-campaign",
		fmt.Sprintf("\n== ShardedCampaign: %d cells across %d workers in %.1fms (%.1f cells/sec) ==\n",
			cells, workers, coldNs/1e6, float64(cells)/(coldNs/1e9)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(cells)/(coldNs/1e9), "cells/sec")
}
