// Shared-replay-context equivalence tests: analyses replayed through
// one shared core.ReplayContext — the registry restored once, sweep
// evaluators compiled once, the sampling report reconstructed once per
// platform — must be byte-identical to live analyses and to per-replay
// NewReplay analyses, for every registered workload, across platform
// presets and option variants, and under concurrent use of one context.
package hmpt

import (
	"reflect"
	"sync"
	"testing"

	"hmpt/internal/core"
	"hmpt/internal/ibs"
	"hmpt/internal/memsim"
)

// TestContextReplayMatchesLive: one context per capture, many cells.
func TestContextReplayMatchesLive(t *testing.T) {
	for _, c := range equivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			snap, err := core.Capture(c.factory(), c.opts)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			ctx, err := core.NewContext(snap)
			if err != nil {
				t.Fatalf("context: %v", err)
			}

			// Cell variants sharing the context: base options, a higher
			// run count, and a different platform preset.
			variants := []core.Options{c.opts}
			runs9 := c.opts
			runs9.Runs = 9
			variants = append(variants, runs9)
			dual := c.opts
			dual.Platform = memsim.DualXeonMax9468()
			variants = append(variants, dual)

			for vi, opts := range variants {
				live, err := core.New(c.factory(), opts).Analyze()
				if err != nil {
					t.Fatalf("variant %d live: %v", vi, err)
				}
				before := core.KernelExecutions()
				shared, err := core.NewContextReplay(ctx, opts).Analyze()
				if err != nil {
					t.Fatalf("variant %d context replay: %v", vi, err)
				}
				if got := core.KernelExecutions() - before; got != 0 {
					t.Errorf("variant %d: context replay executed %d kernels, want 0", vi, got)
				}
				if !reflect.DeepEqual(live, shared) {
					t.Errorf("variant %d: context replay differs from live analysis", vi)
				}
				perReplay, err := core.NewReplay(snap, opts).Analyze()
				if err != nil {
					t.Fatalf("variant %d replay: %v", vi, err)
				}
				if !reflect.DeepEqual(perReplay, shared) {
					t.Errorf("variant %d: context replay differs from per-replay analysis", vi)
				}
			}
		})
	}
}

// TestContextReplayConcurrent: many goroutines replaying one shared
// context concurrently (mixed platforms, mixed sweep parallelism) all
// produce the byte-identical analysis — the read-only contract of the
// context and the clone contract of its memoised evaluators, under the
// race detector in CI.
func TestContextReplayConcurrent(t *testing.T) {
	c := equivCases(t)[0]
	snap, err := core.Capture(c.factory(), c.opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := core.NewContext(snap)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.NewContextReplay(ctx, c.opts).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	wantDual := c.opts
	wantDual.Platform = memsim.DualXeonMax9468()
	wantDualAn, err := core.NewContextReplay(ctx, wantDual).Analyze()
	if err != nil {
		t.Fatal(err)
	}

	const replays = 8
	got := make([]*core.Analysis, replays)
	errs := make([]error, replays)
	var wg sync.WaitGroup
	for i := 0; i < replays; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := c.opts
			if i%2 == 1 {
				opts.Platform = memsim.DualXeonMax9468()
			}
			opts.SweepParallelism = 1 + i%3
			got[i], errs[i] = core.NewContextReplay(ctx, opts).Analyze()
		}()
	}
	wg.Wait()
	for i := 0; i < replays; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent replay %d: %v", i, errs[i])
		}
		expect := want
		if i%2 == 1 {
			expect = wantDualAn
		}
		if !reflect.DeepEqual(expect, got[i]) {
			t.Errorf("concurrent replay %d differs from the serial analysis", i)
		}
	}
}

// TestContextSharesCountValidation pins the platform-independent half
// of report reconstruction: one shared context validates its embedded
// sample counts exactly once (ibs.CountWalks), no matter how many
// platforms reconstruct sampling reports from it — only the per-platform
// latency half is re-derived.
func TestContextSharesCountValidation(t *testing.T) {
	c := equivCases(t)[0]
	snap, err := core.Capture(c.factory(), c.opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := core.NewContext(snap)
	if err != nil {
		t.Fatal(err)
	}
	before := ibs.CountWalks()
	for _, platform := range []*memsim.Platform{memsim.XeonMax9468(), memsim.DualXeonMax9468()} {
		opts := c.opts
		opts.Platform = platform
		if _, err := core.NewContextReplay(ctx, opts).Analyze(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ibs.CountWalks() - before; got != 1 {
		t.Errorf("two platforms ran %d count-validation walks, want 1 (shared table)", got)
	}
	// Per-replay reconstruction (no context) validates per call — the
	// baseline the sharing is measured against.
	before = ibs.CountWalks()
	for _, platform := range []*memsim.Platform{memsim.XeonMax9468(), memsim.DualXeonMax9468()} {
		opts := c.opts
		opts.Platform = platform
		if _, err := core.NewReplay(snap, opts).Analyze(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ibs.CountWalks() - before; got != 2 {
		t.Errorf("two per-replay analyses ran %d count walks, want 2", got)
	}
}
