// Package hmpt is the public API of the Heterogeneous Memory Pool Tuning
// library — a Go reproduction of Vaverka, Vysocky and Riha,
// "Heterogeneous Memory Pool Tuning" (IPPS 2025, arXiv:2505.14294).
//
// The library analyses and tunes the placement of an application's
// individual allocations across heterogeneous memory pools (HBM + DDR on
// an Intel Xeon Max model). Hardware is simulated: a calibrated analytic
// machine model (bandwidths, latencies, per-thread memory-level
// parallelism, cache hierarchy) stands in for the paper's dual Xeon Max
// 9468 node, and a SHIM-style allocator plus an IBS-style sampler stand
// in for the LD_PRELOAD interceptor and Linux perf.
//
// Quick start:
//
//	w, _ := hmpt.NewWorkload("npb.mg")
//	an, err := hmpt.Analyze(w, hmpt.Options{Seed: 1})
//	if err != nil { ... }
//	max, cfg := an.MaxSpeedup()
//	fmt.Printf("max %.2fx with %s in HBM\n", max, cfg.Label)
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory and the experiment index.
package hmpt

import (
	"context"

	"hmpt/internal/cachegc"
	"hmpt/internal/campaign"
	"hmpt/internal/core"
	"hmpt/internal/fsatomic"
	"hmpt/internal/memsim"
	"hmpt/internal/shard"
	"hmpt/internal/trace"
	"hmpt/internal/workloads"

	// Register the benchmark suite with the workload registry.
	_ "hmpt/internal/workloads/chase"
	_ "hmpt/internal/workloads/kwave"
	_ "hmpt/internal/workloads/npbbt"
	_ "hmpt/internal/workloads/npbis"
	_ "hmpt/internal/workloads/npblu"
	_ "hmpt/internal/workloads/npbmg"
	_ "hmpt/internal/workloads/npbsp"
	_ "hmpt/internal/workloads/npbua"
	_ "hmpt/internal/workloads/stream"
	_ "hmpt/internal/workloads/synth"
)

// Re-exported core types: the tuner, its results, and workload contract.
type (
	// Options configures an analysis; see core.Options.
	Options = core.Options
	// Analysis is a complete tuning result with the paper's detailed
	// view, summary view, Table II metrics and placement planners.
	Analysis = core.Analysis
	// Config is one measured placement configuration.
	Config = core.Config
	// Group is one allocation group of the configuration space.
	Group = core.Group
	// Plan is a recommended placement under a capacity budget.
	Plan = core.Plan
	// Workload is the contract benchmarks implement; see
	// internal/workloads for the environment handed to Setup/Run.
	Workload = workloads.Workload
	// Env is the execution environment of a workload run.
	Env = workloads.Env
	// Platform describes the simulated machine.
	Platform = memsim.Platform
)

// Re-exported snapshot and campaign types: captured reference runs, the
// content-addressed snapshot cache, and the scenario-matrix engine.
type (
	// Snapshot is a captured reference run (phase trace + allocation
	// registry + metadata); replaying it is byte-identical to
	// re-executing the kernel. The stored trace is canonical: each
	// distinct phase shape appears once with its total multiplicity, so
	// snapshot size and every downstream pass are O(unique phases) in
	// the kernel's iteration count (see Options.Iterations).
	Snapshot = trace.Snapshot
	// SnapshotCache is the content-addressed on-disk snapshot store.
	SnapshotCache = trace.SnapshotCache
	// ReplayContext is the shared replay environment of one capture:
	// restored registry, trace, sampling report and compiled sweep
	// evaluators, built once and reused read-only by every analysis
	// replaying the capture.
	ReplayContext = core.ReplayContext
	// AnalysisCache is the content-addressed on-disk analysis store —
	// the third caching layer: a campaign cell served from it runs zero
	// kernel executions, zero sampling passes and zero placement
	// costing.
	AnalysisCache = core.AnalysisCache
	// CampaignMatrix declares a workload × platform × variant space.
	CampaignMatrix = campaign.Matrix
	// CampaignWorkload is one workload row of a campaign matrix.
	CampaignWorkload = campaign.Workload
	// CampaignPlatform is one platform-preset column.
	CampaignPlatform = campaign.Platform
	// CampaignVariant is one tuner-option overlay.
	CampaignVariant = campaign.Variant
	// CampaignCell is one evaluated scenario.
	CampaignCell = campaign.Cell
	// CampaignResult is the outcome of a campaign run.
	CampaignResult = campaign.Result
	// CampaignEngine evaluates campaign matrices; configure Cache and
	// Parallelism directly.
	CampaignEngine = campaign.Engine
	// FlightGroup coalesces concurrent identical capture/analysis
	// computations across engine runs (CampaignEngine.Flights): the
	// serving layer's exactly-once layer. See NewFlightGroup.
	FlightGroup = campaign.FlightGroup
	// CacheStats is a point-in-time traffic snapshot of one cache rung
	// (SnapshotCache.Stats, AnalysisCache.Stats).
	CacheStats = trace.CacheStats
	// CachePublisher is the resilient write path of a cache rung
	// (SnapshotCache.Publisher, AnalysisCache.Publisher): transient
	// publish failures retry with backoff, persistent ones demote the
	// rung to degraded (read-only / compute-through) mode until a timed
	// re-probe succeeds.
	CachePublisher = fsatomic.Publisher
	// CachePublisherStats counts a publisher's resilience events:
	// retries, absorbed faults, demotions, re-probes, recoveries and
	// suppressed writes.
	CachePublisherStats = fsatomic.PublisherStats
)

// Cache lifecycle types: on-disk usage accounting and garbage
// collection across the snapshot, analysis and family-index rungs.
type (
	// CacheUsage is a full usage scan of the cache tree, by rung.
	CacheUsage = cachegc.Usage
	// CacheRungUsage is one rung's entry/byte accounting, including the
	// dead subset no current build can read.
	CacheRungUsage = cachegc.RungUsage
	// CacheGCOptions configures a scan or collection pass.
	CacheGCOptions = cachegc.Options
	// CacheGCReport is the outcome of one collection pass.
	CacheGCReport = cachegc.Report
)

// CacheRungStats bundles one *live* cache rung's observable state: the
// traffic counters, the publisher's resilience counters, and whether
// the rung is currently degraded to read-only/compute-through mode —
// the per-rung surface `hmpt cache stats` reports for the on-disk side
// and a serving daemon exports per scrape.
type CacheRungStats struct {
	Stats     CacheStats
	Publisher CachePublisherStats
	Degraded  bool
}

// SnapshotCacheStats captures the snapshot rung's live stats.
func SnapshotCacheStats(c *SnapshotCache) CacheRungStats {
	return CacheRungStats{Stats: c.Stats(), Publisher: c.Publisher().Stats(), Degraded: c.Degraded()}
}

// AnalysisCacheStats captures the analysis rung's live stats.
func AnalysisCacheStats(c *AnalysisCache) CacheRungStats {
	return CacheRungStats{Stats: CacheStats(c.Stats()), Publisher: c.Publisher().Stats(), Degraded: c.Degraded()}
}

// ScanCacheUsage scans the cache tree without collecting anything.
func ScanCacheUsage(opts CacheGCOptions) (*CacheUsage, error) { return cachegc.Scan(opts) }

// CollectCaches runs one garbage-collection pass: dead entries (torn or
// version-orphaned — unreadable by any current build) and aged staging
// files go unconditionally, then live entries are evicted
// least-recently-accessed-first down to Options.MaxBytes. Safe to run
// concurrently with serving daemons and campaigns: only whole published
// entries are removed, and readers treat a vanished entry as a miss.
func CollectCaches(opts CacheGCOptions) (*CacheGCReport, error) { return cachegc.Run(opts) }

// ErrCacheDegraded is returned by cache stores fast-failed because the
// rung's publisher is in degraded mode; campaigns absorb it (the
// computed value is still served) and the rung re-probes on its own.
var ErrCacheDegraded = fsatomic.ErrDegraded

// ShardLeaseReclaims returns the number of expired shard work leases
// this process has torn down and taken over from dead or stalled
// peers — each one a crash the sharded-campaign fleet absorbed. See
// internal/shard and `hmpt campaign -shard-dir`.
func ShardLeaseReclaims() int64 { return shard.LeasesReclaimed() }

// ShardJournalSkips returns the number of campaign cells this process
// found already journaled-complete by another shard worker (or a
// previous run) and therefore never recomputed — the resumability
// counter of sharded execution.
func ShardJournalSkips() int64 { return shard.JournalSkips() }

// NewFlightGroup returns an empty single-flight group to share across
// engines: N concurrent runs needing the same capture or analysis
// execute it once and share the result.
func NewFlightGroup() *FlightGroup { return campaign.NewFlightGroup() }

// CoalescedFlights returns the number of capture/analysis computations
// served from an in-flight or retained single-flight entry instead of
// being executed, process-wide — the serving analogue of the zero-work
// counters below.
func CoalescedFlights() int64 { return campaign.CoalescedFlights() }

// RecoveredPanics returns the number of panics recovered inside
// campaign computations in this process; each failed a single cell (or
// that flight's callers), never the process.
func RecoveredPanics() int64 { return campaign.RecoveredPanics() }

// XeonMax9468 returns the single-socket Intel Xeon Max 9468 platform
// model used by all paper experiments.
func XeonMax9468() *Platform { return memsim.XeonMax9468() }

// DualXeonMax9468 returns the dual-socket server of the paper's Fig. 1.
func DualXeonMax9468() *Platform { return memsim.DualXeonMax9468() }

// Analyze runs the full tuning pipeline (reference run, allocation
// capture, IBS sampling, grouping, exhaustive 2^|AG| placement sweep)
// for the workload and returns the analysis.
func Analyze(w Workload, opts Options) (*Analysis, error) {
	return core.New(w, opts).Analyze()
}

// AnalyzeContext is Analyze under a context: cancellation or deadline
// expiry stops the pipeline between stages and returns ctx.Err().
func AnalyzeContext(ctx context.Context, w Workload, opts Options) (*Analysis, error) {
	return core.New(w, opts).AnalyzeContext(ctx)
}

// Capture executes the workload's kernel once — the reference stage of
// Analyze — and returns the run as a replayable snapshot carrying the
// canonical deduplicated trace.
func Capture(w Workload, opts Options) (*Snapshot, error) {
	return core.Capture(w, opts)
}

// Replay analyses a captured snapshot without executing any kernel. The
// result is byte-identical to Analyze with the capture's options.
func Replay(snap *Snapshot, opts Options) (*Analysis, error) {
	return core.NewReplay(snap, opts).Analyze()
}

// NewSnapshotCache opens (creating if needed) a content-addressed
// snapshot cache rooted at dir, for sharing captured reference runs
// across processes and campaign runs.
func NewSnapshotCache(dir string) (*SnapshotCache, error) {
	return trace.NewSnapshotCache(dir)
}

// NewAnalysisCache opens (creating if needed) a content-addressed
// analysis cache rooted at dir, for sharing complete analyses across
// processes and campaign runs (CampaignEngine.Analyses). A campaign
// cell served from it runs zero placement costing.
func NewAnalysisCache(dir string) (*AnalysisCache, error) {
	return core.NewAnalysisCache(dir)
}

// NewContext builds the shared replay environment of a snapshot; see
// ReplayContext. ContextReplay analyses through it.
func NewContext(snap *Snapshot) (*ReplayContext, error) {
	return core.NewContext(snap)
}

// ContextReplay analyses a capture through its shared replay context
// without re-restoring the registry or re-compiling sweep evaluators.
// The result is byte-identical to Replay of the same snapshot/options.
func ContextReplay(ctx *ReplayContext, opts Options) (*Analysis, error) {
	return core.NewContextReplay(ctx, opts).Analyze()
}

// RunCampaign evaluates a scenario matrix with default engine settings:
// each kernel executes at most once, cells fan out over all cores. Use
// CampaignEngine directly for a snapshot cache or a worker cap.
func RunCampaign(m CampaignMatrix) (*CampaignResult, error) {
	return (&campaign.Engine{}).Run(m)
}

// RunCampaignContext is RunCampaign under a context: cancellation or
// deadline expiry stops the fan-out mid-matrix (no new cells start,
// in-flight cells wind down) and returns ctx.Err(), leaving any shared
// cache tree consistent.
func RunCampaignContext(ctx context.Context, m CampaignMatrix) (*CampaignResult, error) {
	return (&campaign.Engine{}).RunContext(ctx, m)
}

// KernelExecutions returns the number of real kernel executions the
// tuning pipeline has performed in this process. A warm campaign — all
// snapshots served from the cache — performs zero.
func KernelExecutions() int64 { return core.KernelExecutions() }

// SamplePasses returns the number of IBS sampling passes — report
// constructions that consume RNG or derive fresh sample counts — the
// pipeline has performed in this process. Analyses replaying a snapshot
// reconstruct their sampling report from the embedded counts through an
// RNG-free validation walk, so a warm campaign performs zero.
func SamplePasses() int64 { return core.SamplePasses() }

// SweepEvaluations returns the number of probe/sweep placement-costing
// passes the pipeline has performed in this process — the third rung of
// the zero-work ladder after KernelExecutions and SamplePasses. A
// campaign served from the analysis cache performs zero.
func SweepEvaluations() int64 { return core.SweepEvaluations() }

// DerivedSnapshots returns the number of snapshots the pipeline has
// synthesized by transposing a cached derivation-family sibling
// (iteration, scale or seed change) instead of executing the kernel —
// the fourth pinned counter of the cache ladder. A campaign sweeping N
// iteration settings of one family workload executes one kernel and
// derives the other N-1 captures.
func DerivedSnapshots() int64 { return core.DerivedSnapshots() }

// SeedDerivations returns the number of derived snapshots whose seed
// was transposed from the base capture's (a workloads.SeedFamily
// derivation rewriting Meta.Seed/Meta.EnvSeed). An 8-seed sweep of one
// seed-invariant workload executes one kernel and derives the other 7
// captures, all of them counted here.
func SeedDerivations() int64 { return core.SeedDerivations() }

// DeriveSnapshot transposes a captured snapshot to a neighbouring
// (iterations, scale, seed) key of its derivation family without
// executing the kernel; the result is byte-identical to a real Capture
// under opts. w must be a fresh instance of the captured configuration.
func DeriveSnapshot(base *Snapshot, w Workload, opts Options) (*Snapshot, error) {
	return core.DeriveSnapshot(base, w, opts)
}

// NewWorkload instantiates a registered benchmark by name; see
// WorkloadNames for the registry contents.
func NewWorkload(name string) (Workload, error) { return workloads.New(name) }

// WorkloadNames lists the registered benchmarks.
func WorkloadNames() []string { return workloads.Names() }

// DescribeWorkload returns the one-line description of a registered
// benchmark.
func DescribeWorkload(name string) string { return workloads.Describe(name) }

// NewEnv builds a workload environment for direct (non-tuner) use:
// threads is the simulated thread count (0 = all cores), scale the
// simulated-size multiplier, seed the determinism root.
func NewEnv(threads int, scale float64, seed uint64) *Env {
	return workloads.NewEnv(threads, scale, seed)
}
