// Seed-equivalence and determinism regression tests for the sweep
// engine: Analyze (compiled, incremental, parallel) must reproduce
// AnalyzeReference (naive per-mask costing) byte for byte, for every
// registered workload, and must be run-to-run identical at any sweep
// parallelism. These tests are the enforcement of the bit-exactness
// contract documented on memsim.SweepEvaluator.
package hmpt

import (
	"reflect"
	"sort"
	"testing"

	"hmpt/internal/core"
	"hmpt/internal/experiments"
	"hmpt/internal/workloads"
)

// equivCase binds one registered workload to a factory and options that
// analyze quickly at a fixed seed.
type equivCase struct {
	name    string
	factory workloads.Factory
	opts    core.Options
}

// equivCases covers every registered workload: the Table I/II
// benchmarks through their experiments specs (reduced-size instances,
// paper seeds), and the microbenchmark workloads through the registry.
func equivCases(t *testing.T) []equivCase {
	var cases []equivCase
	for _, spec := range experiments.Specs() {
		cases = append(cases, equivCase{name: spec.Name, factory: spec.Fast, opts: spec.Options})
	}
	for _, name := range []string{"chase", "randsum", "stream", "synth"} {
		name := name
		factory := func() workloads.Workload {
			w, err := workloads.New(name)
			if err != nil {
				t.Fatalf("registry workload %q: %v", name, err)
			}
			return w
		}
		cases = append(cases, equivCase{name: name, factory: factory, opts: core.Options{Seed: 1}})
	}

	// Keep the oracle honest: a workload registered without an
	// equivalence case here would silently escape the regression net.
	covered := make(map[string]bool, len(cases))
	for _, c := range cases {
		covered[c.name] = true
	}
	var missing []string
	for _, name := range workloads.Names() {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		t.Fatalf("registered workloads without an equivalence case: %v", missing)
	}
	return cases
}

// TestEngineMatchesReference asserts the engine analysis equals the
// naive reference analysis exactly — every group (order, labels, solo
// speedups), every configuration (times, speedups, estimates), and all
// metadata — for every registered workload at its fixed seed.
func TestEngineMatchesReference(t *testing.T) {
	for _, c := range equivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ref, err := core.New(c.factory(), c.opts).AnalyzeReference()
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			eng, err := core.New(c.factory(), c.opts).Analyze()
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			diffAnalyses(t, ref, eng)
		})
	}
}

// diffAnalyses reports precise differences between two analyses; the
// final DeepEqual backstops any field the targeted checks miss.
func diffAnalyses(t *testing.T, ref, eng *core.Analysis) {
	t.Helper()
	if ref.BaselineTime != eng.BaselineTime {
		t.Errorf("baseline: ref %.17g eng %.17g", float64(ref.BaselineTime), float64(eng.BaselineTime))
	}
	if len(ref.Groups) != len(eng.Groups) {
		t.Fatalf("group count: ref %d eng %d", len(ref.Groups), len(eng.Groups))
	}
	for i := range ref.Groups {
		r, e := &ref.Groups[i], &eng.Groups[i]
		if r.Label != e.Label || r.SoloSpeedup != e.SoloSpeedup || !reflect.DeepEqual(r.Allocs, e.Allocs) {
			t.Errorf("group %d: ref {%s solo=%.17g %v} eng {%s solo=%.17g %v}",
				i, r.Label, r.SoloSpeedup, r.Allocs, e.Label, e.SoloSpeedup, e.Allocs)
		}
	}
	if len(ref.Configs) != len(eng.Configs) {
		t.Fatalf("config count: ref %d eng %d", len(ref.Configs), len(eng.Configs))
	}
	for i := range ref.Configs {
		r, e := &ref.Configs[i], &eng.Configs[i]
		if r.Label != e.Label {
			t.Errorf("config %d label: ref %s eng %s", i, r.Label, e.Label)
		}
		if !reflect.DeepEqual(r.Times, e.Times) {
			t.Errorf("config %s times: ref %v eng %v", r.Label, r.Times, e.Times)
		}
		if r.Speedup != e.Speedup || r.EstSpeedup != e.EstSpeedup || r.SpeedupCI != e.SpeedupCI {
			t.Errorf("config %s: ref (%.17g %.17g %.17g) eng (%.17g %.17g %.17g)",
				r.Label, r.Speedup, r.EstSpeedup, r.SpeedupCI, e.Speedup, e.EstSpeedup, e.SpeedupCI)
		}
	}
	if !reflect.DeepEqual(ref, eng) {
		t.Errorf("analyses differ outside the fields compared above")
	}
}

// TestParallelSweepDeterministic asserts the engine analysis is
// byte-identical across repeated runs and across sweep worker counts:
// parallelism must change scheduling only, never results.
func TestParallelSweepDeterministic(t *testing.T) {
	spec, err := experiments.SpecFor("npb.mg")
	if err != nil {
		t.Fatal(err)
	}
	var base *core.Analysis
	for _, workers := range []int{1, 1, 3, 16} {
		opts := spec.Options
		opts.SweepParallelism = workers
		an, err := core.New(spec.Fast(), opts).Analyze()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = an
			continue
		}
		if !reflect.DeepEqual(base, an) {
			t.Errorf("analysis differs at SweepParallelism=%d", workers)
		}
	}
}
