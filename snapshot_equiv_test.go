// Snapshot-replay equivalence tests: for every registered workload, a
// captured reference run encoded to bytes, decoded back, and replayed
// through the tuner must be byte-identical to a live analysis that
// executed the kernel. Together with engine_equiv_test.go this extends
// the bit-exactness oracle across the snapshot codec, so "replay from
// snapshot" can substitute for "run the kernel" anywhere.
package hmpt

import (
	"bytes"
	"reflect"
	"testing"

	"hmpt/internal/core"
	"hmpt/internal/trace"
)

// TestReplayMatchesLive captures, round-trips through the codec, and
// replays every registered workload, comparing against the live engine
// analysis (itself equivalence-tested against the naive oracle).
func TestReplayMatchesLive(t *testing.T) {
	for _, c := range equivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			snap, err := core.Capture(c.factory(), c.opts)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			enc, err := snap.EncodeBytes()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			enc2, err := snap.EncodeBytes()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatal("captured snapshot does not encode deterministically")
			}
			dec, err := trace.DecodeSnapshotBytes(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(snap, dec) {
				t.Fatal("decoded snapshot differs from captured snapshot")
			}

			live, err := core.New(c.factory(), c.opts).Analyze()
			if err != nil {
				t.Fatalf("live: %v", err)
			}
			before := core.KernelExecutions()
			replay, err := core.NewReplay(dec, c.opts).Analyze()
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if got := core.KernelExecutions() - before; got != 0 {
				t.Errorf("replay executed %d kernels, want 0", got)
			}
			diffAnalyses(t, live, replay)

			// The naive-oracle path must accept snapshots identically.
			replayRef, err := core.NewReplay(dec, c.opts).AnalyzeReference()
			if err != nil {
				t.Fatalf("replay reference: %v", err)
			}
			if !reflect.DeepEqual(live, replayRef) {
				t.Error("snapshot replay through the naive oracle differs from live analysis")
			}
		})
	}
}

// TestReplayRejectsMismatchedOptions: a snapshot injected under options
// that disagree with its capture inputs must fail loudly instead of
// silently diverging from a live run.
func TestReplayRejectsMismatchedOptions(t *testing.T) {
	spec := equivCases(t)[0]
	snap, err := core.Capture(spec.factory(), spec.opts)
	if err != nil {
		t.Fatal(err)
	}
	bad := spec.opts
	bad.Seed = snap.Meta.Seed + 1
	bad.Snapshot = snap
	if _, err := core.New(spec.factory(), bad).Analyze(); err == nil {
		t.Error("analysis accepted a snapshot captured under a different seed")
	}
	wrong := equivCases(t)[1]
	mis := wrong.opts
	mis.Snapshot = snap
	if _, err := core.New(wrong.factory(), mis).Analyze(); err == nil {
		t.Error("analysis accepted a snapshot of a different workload")
	}
}
