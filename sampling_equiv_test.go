// Sampling-engine equivalence tests: the batched IBS engine
// (ibs.Sampler.Sample, O(streams × pools)) must agree with the
// per-sample reference loop (SampleReference, the bit-level oracle for
// the old RNG discipline) for every registered workload — exactly on
// every count-derived statistic (Total, Unmapped, Period, per-allocation
// Samples, Density, ReadFrac), and within CLT tolerance on AvgLatency,
// the one statistic the pool roulette randomises. The engine must also
// be deterministic for a fixed seed and invariant to concurrency —
// sampling results never depend on what else is running.
package hmpt

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"hmpt/internal/ibs"
	"hmpt/internal/memsim"
	"hmpt/internal/shim"
	"hmpt/internal/trace"
	"hmpt/internal/workloads"
	"hmpt/internal/xrand"
)

// sampleSetupFor executes the case's kernel once and returns everything
// a sampling pass needs.
func sampleSetupFor(t *testing.T, c equivCase) (*shim.Allocator, *trace.Trace, *memsim.Machine) {
	t.Helper()
	w := c.factory()
	env := workloads.NewEnv(0, 1, c.opts.Seed+1)
	if err := w.Setup(env); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if err := w.Run(env); err != nil {
		t.Fatalf("run: %v", err)
	}
	return env.Alloc, env.Rec.Trace(), memsim.NewMachine(memsim.XeonMax9468())
}

// diffReports compares an engine report against the reference oracle:
// count-derived statistics exactly, latency within tol·stat relative
// tolerance (tol scaled by 1/sqrt(n) per allocation).
func diffReports(t *testing.T, ref, eng *ibs.Report, label string) {
	t.Helper()
	if eng.Total != ref.Total || eng.Unmapped != ref.Unmapped || eng.Period != ref.Period {
		t.Errorf("%s: (total, unmapped, period) engine (%d, %d, %d) vs reference (%d, %d, %d)",
			label, eng.Total, eng.Unmapped, eng.Period, ref.Total, ref.Unmapped, ref.Period)
	}
	if len(eng.ByAlloc) != len(ref.ByAlloc) {
		t.Fatalf("%s: engine reports %d allocations, reference %d", label, len(eng.ByAlloc), len(ref.ByAlloc))
	}
	for id, r := range ref.ByAlloc {
		e := eng.ByAlloc[id]
		if e == nil {
			t.Errorf("%s: alloc %d missing from engine report", label, id)
			continue
		}
		if e.Samples != r.Samples || e.Density != r.Density || e.ReadFrac != r.ReadFrac {
			t.Errorf("%s: alloc %d counts: engine (n=%d d=%.17g rf=%.17g) vs reference (n=%d d=%.17g rf=%.17g)",
				label, id, e.Samples, e.Density, e.ReadFrac, r.Samples, r.Density, r.ReadFrac)
		}
		// CLT tolerance: the roulette's per-sample pool noise averages
		// out as 1/sqrt(n); latencies across pools differ by ~20 %, so
		// 1.5/sqrt(n) is a ≫6-sigma envelope on the relative error.
		tol := 1.5/math.Sqrt(float64(r.Samples)) + 1e-12
		if r.AvgLatency > 0 {
			if rel := math.Abs(float64(e.AvgLatency)/float64(r.AvgLatency) - 1); rel > tol {
				t.Errorf("%s: alloc %d AvgLatency: engine %.17g vs reference %.17g (rel %.3g > tol %.3g, n=%d)",
					label, id, float64(e.AvgLatency), float64(r.AvgLatency), rel, tol, r.Samples)
			}
		}
	}
}

// TestSamplingEngineMatchesReference runs both sampling paths for every
// registered workload under the all-DDR reference placement, a mixed
// whole-pool placement, and an interleaved split placement (the
// multinomial path), and checks the equivalence contract.
func TestSamplingEngineMatchesReference(t *testing.T) {
	for _, c := range equivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			al, tr, m := sampleSetupFor(t, c)
			ddr := m.P.MustPool(memsim.DDR)
			hbm := m.P.MustPool(memsim.HBM)

			mixed := memsim.NewSimplePlacement(len(m.P.Pools), ddr)
			for i, a := range al.All() {
				if i%2 == 1 {
					mixed.Set(a.ID, hbm)
				}
			}
			placements := []struct {
				name string
				pl   memsim.Placement
			}{
				{"all-ddr", memsim.NewSimplePlacement(len(m.P.Pools), ddr)},
				{"mixed-pools", mixed},
				{"interleaved", &memsim.InterleavedPlacement{Pools: len(m.P.Pools), Across: []memsim.PoolID{ddr, hbm}}},
			}
			s := ibs.NewSampler()
			for _, pc := range placements {
				ref, err := s.SampleReference(tr, al, m, pc.pl, xrand.New(c.opts.Seed))
				if err != nil {
					t.Fatalf("%s: reference: %v", pc.name, err)
				}
				eng, err := s.Sample(tr, al, m, pc.pl, xrand.New(c.opts.Seed))
				if err != nil {
					t.Fatalf("%s: engine: %v", pc.name, err)
				}
				diffReports(t, ref, eng, pc.name)

				again, err := s.Sample(tr, al, m, pc.pl, xrand.New(c.opts.Seed))
				if err != nil {
					t.Fatalf("%s: engine rerun: %v", pc.name, err)
				}
				if !reflect.DeepEqual(eng, again) {
					t.Errorf("%s: engine report not deterministic for a fixed seed", pc.name)
				}
			}
		})
	}
}

// TestSamplingEngineConcurrencyInvariant: concurrent engine passes over
// one shared trace and allocator produce the identical report a lone
// pass does — sampling has no hidden shared state, so campaign
// parallelism can never perturb it.
func TestSamplingEngineConcurrencyInvariant(t *testing.T) {
	c := equivCases(t)[0]
	al, tr, m := sampleSetupFor(t, c)
	pl := memsim.NewSimplePlacement(len(m.P.Pools), m.P.MustPool(memsim.DDR))
	s := ibs.NewSampler()
	base, err := s.Sample(tr, al, m, pl, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	reports := make([]*ibs.Report, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = s.Sample(tr, al, m, pl, xrand.New(9))
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(base, reports[i]) {
			t.Errorf("worker %d produced a different report than the lone pass", i)
		}
	}
}
