// Derivation equivalence tests: the fourth rung of the cache ladder
// must be an oracle, not an approximation. For every registered family
// workload, a snapshot derived from a capture at one iteration count
// must be byte-identical to a real capture at the target count — same
// wire encoding, same content address — in both directions, including
// the Iterations=0 (workload default) spelling of the base key. Scale
// transposition must likewise match a real capture at the target scale.
// Workloads that cannot support derivation are opt-outs documented in
// the skip list below; an undocumented workload fails the test, so new
// benchmarks must either join a family or explain themselves here.
package hmpt

import (
	"bytes"
	"testing"

	"hmpt/internal/core"
	"hmpt/internal/workloads"
)

// deriveSkipList documents every registered workload that opts out of
// snapshot derivation, and why. A workload appearing here while
// declaring a family interface — or declaring neither family interface
// without appearing here — is a test failure, so the list cannot rot.
var deriveSkipList = map[string]string{
	"chase": "emits a single pointer-chase phase outside any iteration loop; " +
		"Options.Iterations never reaches the kernel, so there is no iteration family to transpose across",
	"randsum": "same single-phase shape as chase (one indirect-sum phase, no iteration loop); " +
		"no iteration family to transpose across",
}

// TestDeriveMatchesCapture pins the derivation oracle for iteration
// changes: for every family workload, Capture(I0) transposed to I1 is
// byte-identical to Capture(I1), and transposing back — through the
// Iterations=0 default spelling when the base options use it — is
// byte-identical to the original capture.
func TestDeriveMatchesCapture(t *testing.T) {
	for _, c := range equivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w := c.factory()
			fam, ok := w.(workloads.IterationFamily)
			if !ok {
				reason, listed := deriveSkipList[c.name]
				if !listed {
					t.Fatalf("workload %q declares no iteration schedule and is not on the documented skip list", c.name)
				}
				t.Skipf("derivation opt-out: %s", reason)
			}
			if _, listed := deriveSkipList[c.name]; listed {
				t.Fatalf("workload %q is on the derivation skip list but declares an iteration schedule", c.name)
			}

			base, err := core.Capture(c.factory(), c.opts)
			if err != nil {
				t.Fatalf("base capture: %v", err)
			}
			baseBytes, err := base.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}

			// Doubling the effective count exercises every slot of the
			// schedule (periodic phases like UA's adapt included) while
			// staying a genuinely different key.
			eff := c.opts.Iterations
			if eff <= 0 {
				eff = fam.DefaultIterations()
			}
			target := c.opts
			target.Iterations = 2 * eff

			before := core.DerivedSnapshots()
			derived, err := core.DeriveSnapshot(base, c.factory(), target)
			if err != nil {
				t.Fatalf("derive %d -> %d: %v", c.opts.Iterations, target.Iterations, err)
			}
			if got := core.DerivedSnapshots() - before; got != 1 {
				t.Errorf("derivation tallied %d DerivedSnapshots ticks, want 1", got)
			}
			real, err := core.Capture(c.factory(), target)
			if err != nil {
				t.Fatalf("capture at target: %v", err)
			}
			realBytes, err := real.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			derivedBytes, err := derived.EncodeBytes()
			if err != nil {
				t.Fatalf("encoding derived snapshot: %v", err)
			}
			if !bytes.Equal(derivedBytes, realBytes) {
				t.Errorf("derived snapshot differs from real capture at iterations=%d (%d vs %d bytes)",
					target.Iterations, len(derivedBytes), len(realBytes))
			}
			if got, want := core.SnapshotKeyFor(c.name, target).ID(), core.SnapshotKeyFor(c.name, c.opts).ID(); got == want {
				t.Fatalf("target key %s collides with base key — the derivation test is vacuous", got)
			}

			// Round-trip: the derived capture is as good a base as a real
			// one, and deriving back to the original options — including
			// the Iterations=0 default spelling — reproduces the base
			// capture bit for bit.
			back, err := core.DeriveSnapshot(derived, c.factory(), c.opts)
			if err != nil {
				t.Fatalf("derive back %d -> %d: %v", target.Iterations, c.opts.Iterations, err)
			}
			backBytes, err := back.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(backBytes, baseBytes) {
				t.Errorf("round-tripped snapshot differs from the original base capture (%d vs %d bytes)",
					len(backBytes), len(baseBytes))
			}
		})
	}
}

// TestDeriveScaleMatchesCapture pins the derivation oracle for scale
// changes: every family workload draws its simulated footprint from its
// own Config, never Env.Scale, so a scale transposition is a metadata
// rewrite that must match a real capture at the target scale exactly.
func TestDeriveScaleMatchesCapture(t *testing.T) {
	for _, c := range equivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w := c.factory()
			sf, ok := w.(workloads.ScaleFamily)
			if !ok || !sf.ScaleInvariant() {
				reason, listed := deriveSkipList[c.name]
				if !listed {
					t.Fatalf("workload %q declares no scale family and is not on the documented skip list", c.name)
				}
				t.Skipf("derivation opt-out: %s", reason)
			}

			base, err := core.Capture(c.factory(), c.opts)
			if err != nil {
				t.Fatalf("base capture: %v", err)
			}
			target := c.opts
			target.Scale = 2
			if c.opts.Scale == 2 {
				target.Scale = 3
			}
			derived, err := core.DeriveSnapshot(base, c.factory(), target)
			if err != nil {
				t.Fatalf("derive scale %g -> %g: %v", c.opts.Scale, target.Scale, err)
			}
			real, err := core.Capture(c.factory(), target)
			if err != nil {
				t.Fatalf("capture at target scale: %v", err)
			}
			realBytes, err := real.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			derivedBytes, err := derived.EncodeBytes()
			if err != nil {
				t.Fatalf("encoding derived snapshot: %v", err)
			}
			if !bytes.Equal(derivedBytes, realBytes) {
				t.Errorf("scale-derived snapshot differs from real capture at scale=%g (%d vs %d bytes)",
					target.Scale, len(derivedBytes), len(realBytes))
			}
		})
	}
}

// TestDeriveRefusals pins the refusal contract: any mismatch between
// the requested key and the base's derivation family is an error, never
// a silently divergent snapshot.
func TestDeriveRefusals(t *testing.T) {
	w, err := workloads.New("stream")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Seed: 1}
	base, err := core.Capture(w, opts)
	if err != nil {
		t.Fatal(err)
	}

	refuse := func(name string, mutate func(*core.Options), mw workloads.Workload) {
		t.Helper()
		o := opts
		mutate(&o)
		if mw == nil {
			mw, _ = workloads.New("stream")
		}
		if _, err := core.DeriveSnapshot(base, mw, o); err == nil {
			t.Errorf("%s: derivation accepted a key outside the base's family", name)
		}
	}
	refuse("seed change", func(o *core.Options) { o.Seed = 2; o.Iterations = 5 }, nil)
	refuse("threads change", func(o *core.Options) { o.Threads = 3; o.Iterations = 5 }, nil)
	refuse("sample-period change", func(o *core.Options) { o.SamplePeriod = 1024; o.Iterations = 5 }, nil)
	refuse("sample-budget change", func(o *core.Options) { o.SampleBudget = 99; o.Iterations = 5 }, nil)
	chase, err := workloads.New("chase")
	if err != nil {
		t.Fatal(err)
	}
	refuse("cross-workload", func(o *core.Options) { o.Iterations = 5 }, chase)
}
