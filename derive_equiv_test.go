// Derivation equivalence tests: the fourth rung of the cache ladder
// must be an oracle, not an approximation. For every registered family
// workload, a snapshot derived from a capture at one iteration count
// must be byte-identical to a real capture at the target count — same
// wire encoding, same content address — in both directions, including
// the Iterations=0 (workload default) spelling of the base key. Scale
// transposition must likewise match a real capture at the target
// scale, and seed transposition (workloads.SeedFamily) a real capture
// at the target seed, both directions again. Workloads that cannot
// support derivation are opt-outs documented in the skip list below;
// an undocumented workload fails the test, so new benchmarks must
// either join a family or explain themselves here.
package hmpt

import (
	"bytes"
	"testing"

	"hmpt/internal/core"
	"hmpt/internal/workloads"
)

// deriveSkipList documents every registered workload that opts out of
// snapshot derivation, and why. A workload appearing here while
// declaring a family interface — or declaring neither family interface
// without appearing here — is a test failure, so the list cannot rot.
var deriveSkipList = map[string]string{
	"chase": "emits a single pointer-chase phase outside any iteration loop, so there is no iteration " +
		"family to transpose across; and its Sattolo-cycle permutation is drawn from the RNG, so the " +
		"realized access pattern is the seed — no seed family either",
	"randsum": "same single-phase shape as chase (one indirect-sum phase, no iteration loop); " +
		"its random gather indices are drawn from the RNG, so like chase it is seed-dependent by design",
}

// TestDeriveMatchesCapture pins the derivation oracle for iteration
// changes: for every family workload, Capture(I0) transposed to I1 is
// byte-identical to Capture(I1), and transposing back — through the
// Iterations=0 default spelling when the base options use it — is
// byte-identical to the original capture.
func TestDeriveMatchesCapture(t *testing.T) {
	for _, c := range equivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w := c.factory()
			fam, ok := w.(workloads.IterationFamily)
			if !ok {
				reason, listed := deriveSkipList[c.name]
				if !listed {
					t.Fatalf("workload %q declares no iteration schedule and is not on the documented skip list", c.name)
				}
				t.Skipf("derivation opt-out: %s", reason)
			}
			if _, listed := deriveSkipList[c.name]; listed {
				t.Fatalf("workload %q is on the derivation skip list but declares an iteration schedule", c.name)
			}

			base, err := core.Capture(c.factory(), c.opts)
			if err != nil {
				t.Fatalf("base capture: %v", err)
			}
			baseBytes, err := base.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}

			// Doubling the effective count exercises every slot of the
			// schedule (periodic phases like UA's adapt included) while
			// staying a genuinely different key.
			eff := c.opts.Iterations
			if eff <= 0 {
				eff = fam.DefaultIterations()
			}
			target := c.opts
			target.Iterations = 2 * eff

			before := core.DerivedSnapshots()
			derived, err := core.DeriveSnapshot(base, c.factory(), target)
			if err != nil {
				t.Fatalf("derive %d -> %d: %v", c.opts.Iterations, target.Iterations, err)
			}
			if got := core.DerivedSnapshots() - before; got != 1 {
				t.Errorf("derivation tallied %d DerivedSnapshots ticks, want 1", got)
			}
			real, err := core.Capture(c.factory(), target)
			if err != nil {
				t.Fatalf("capture at target: %v", err)
			}
			realBytes, err := real.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			derivedBytes, err := derived.EncodeBytes()
			if err != nil {
				t.Fatalf("encoding derived snapshot: %v", err)
			}
			if !bytes.Equal(derivedBytes, realBytes) {
				t.Errorf("derived snapshot differs from real capture at iterations=%d (%d vs %d bytes)",
					target.Iterations, len(derivedBytes), len(realBytes))
			}
			if got, want := core.SnapshotKeyFor(c.name, target).ID(), core.SnapshotKeyFor(c.name, c.opts).ID(); got == want {
				t.Fatalf("target key %s collides with base key — the derivation test is vacuous", got)
			}

			// Round-trip: the derived capture is as good a base as a real
			// one, and deriving back to the original options — including
			// the Iterations=0 default spelling — reproduces the base
			// capture bit for bit.
			back, err := core.DeriveSnapshot(derived, c.factory(), c.opts)
			if err != nil {
				t.Fatalf("derive back %d -> %d: %v", target.Iterations, c.opts.Iterations, err)
			}
			backBytes, err := back.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(backBytes, baseBytes) {
				t.Errorf("round-tripped snapshot differs from the original base capture (%d vs %d bytes)",
					len(backBytes), len(baseBytes))
			}
		})
	}
}

// TestDeriveScaleMatchesCapture pins the derivation oracle for scale
// changes: every family workload draws its simulated footprint from its
// own Config, never Env.Scale, so a scale transposition is a metadata
// rewrite that must match a real capture at the target scale exactly.
func TestDeriveScaleMatchesCapture(t *testing.T) {
	for _, c := range equivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w := c.factory()
			sf, ok := w.(workloads.ScaleFamily)
			if !ok || !sf.ScaleInvariant() {
				reason, listed := deriveSkipList[c.name]
				if !listed {
					t.Fatalf("workload %q declares no scale family and is not on the documented skip list", c.name)
				}
				t.Skipf("derivation opt-out: %s", reason)
			}

			base, err := core.Capture(c.factory(), c.opts)
			if err != nil {
				t.Fatalf("base capture: %v", err)
			}
			target := c.opts
			target.Scale = 2
			if c.opts.Scale == 2 {
				target.Scale = 3
			}
			derived, err := core.DeriveSnapshot(base, c.factory(), target)
			if err != nil {
				t.Fatalf("derive scale %g -> %g: %v", c.opts.Scale, target.Scale, err)
			}
			real, err := core.Capture(c.factory(), target)
			if err != nil {
				t.Fatalf("capture at target scale: %v", err)
			}
			realBytes, err := real.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			derivedBytes, err := derived.EncodeBytes()
			if err != nil {
				t.Fatalf("encoding derived snapshot: %v", err)
			}
			if !bytes.Equal(derivedBytes, realBytes) {
				t.Errorf("scale-derived snapshot differs from real capture at scale=%g (%d vs %d bytes)",
					target.Scale, len(derivedBytes), len(realBytes))
			}
		})
	}
}

// TestDeriveRefusals pins the refusal contract: any mismatch between
// the requested key and the base's derivation family is an error, never
// a silently divergent snapshot.
func TestDeriveRefusals(t *testing.T) {
	w, err := workloads.New("stream")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Seed: 1}
	base, err := core.Capture(w, opts)
	if err != nil {
		t.Fatal(err)
	}

	refuse := func(name string, mutate func(*core.Options), mw workloads.Workload) {
		t.Helper()
		o := opts
		mutate(&o)
		if mw == nil {
			mw, _ = workloads.New("stream")
		}
		if _, err := core.DeriveSnapshot(base, mw, o); err == nil {
			t.Errorf("%s: derivation accepted a key outside the base's family", name)
		}
	}
	refuse("threads change", func(o *core.Options) { o.Threads = 3; o.Iterations = 5 }, nil)
	refuse("sample-period change", func(o *core.Options) { o.SamplePeriod = 1024; o.Iterations = 5 }, nil)
	refuse("sample-budget change", func(o *core.Options) { o.SampleBudget = 99; o.Iterations = 5 }, nil)
	chase, err := workloads.New("chase")
	if err != nil {
		t.Fatal(err)
	}
	refuse("cross-workload", func(o *core.Options) { o.Iterations = 5 }, chase)

	// Seed changes are derivable for SeedFamily workloads (stream above
	// accepts them — see TestDeriveSeedMatchesCapture), but a workload
	// whose access pattern is drawn from the RNG must refuse: its
	// realized permutation *is* the seed.
	for _, name := range []string{"chase", "randsum"} {
		w, err := workloads.New(name)
		if err != nil {
			t.Fatal(err)
		}
		seedBase, err := core.Capture(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		mw, _ := workloads.New(name)
		o := opts
		o.Seed = 2
		if _, err := core.DeriveSnapshot(seedBase, mw, o); err == nil {
			t.Errorf("%s: seed derivation accepted for a seed-dependent workload", name)
		}
	}
}

// TestDeriveSeedMatchesCapture pins the derivation oracle for seed
// changes: for every seed-invariant workload, Capture(S0) transposed to
// S1 is byte-identical to Capture(S1) — the RNG only ever filled data
// values, so only Meta.Seed/Meta.EnvSeed differ — and transposing back
// reproduces the original capture bit for bit.
func TestDeriveSeedMatchesCapture(t *testing.T) {
	for _, c := range equivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w := c.factory()
			sf, ok := w.(workloads.SeedFamily)
			if !ok || !sf.SeedInvariant() {
				reason, listed := deriveSkipList[c.name]
				if !listed {
					t.Fatalf("workload %q declares no seed family and is not on the documented skip list", c.name)
				}
				t.Skipf("derivation opt-out: %s", reason)
			}
			if _, listed := deriveSkipList[c.name]; listed {
				t.Fatalf("workload %q is on the derivation skip list but declares a seed family", c.name)
			}

			base, err := core.Capture(c.factory(), c.opts)
			if err != nil {
				t.Fatalf("base capture: %v", err)
			}
			baseBytes, err := base.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}

			effSeed := c.opts.Seed
			if effSeed == 0 {
				effSeed = 1 // the withDefaults canonical seed
			}
			target := c.opts
			target.Seed = effSeed + 1

			beforeDerived := core.DerivedSnapshots()
			beforeSeed := core.SeedDerivations()
			derived, err := core.DeriveSnapshot(base, c.factory(), target)
			if err != nil {
				t.Fatalf("derive seed %d -> %d: %v", effSeed, target.Seed, err)
			}
			if got := core.DerivedSnapshots() - beforeDerived; got != 1 {
				t.Errorf("seed derivation tallied %d DerivedSnapshots ticks, want 1", got)
			}
			if got := core.SeedDerivations() - beforeSeed; got != 1 {
				t.Errorf("seed derivation tallied %d SeedDerivations ticks, want 1", got)
			}
			real, err := core.Capture(c.factory(), target)
			if err != nil {
				t.Fatalf("capture at target seed: %v", err)
			}
			realBytes, err := real.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			derivedBytes, err := derived.EncodeBytes()
			if err != nil {
				t.Fatalf("encoding derived snapshot: %v", err)
			}
			if !bytes.Equal(derivedBytes, realBytes) {
				t.Errorf("seed-derived snapshot differs from real capture at seed=%d (%d vs %d bytes)",
					target.Seed, len(derivedBytes), len(realBytes))
			}
			if got, want := core.SnapshotKeyFor(c.name, target).ID(), core.SnapshotKeyFor(c.name, c.opts).ID(); got == want {
				t.Fatalf("target key %s collides with base key — the derivation test is vacuous", got)
			}

			// Reverse direction: the seed-derived capture is as good a
			// base as a real one, and deriving back reproduces the base.
			back, err := core.DeriveSnapshot(derived, c.factory(), c.opts)
			if err != nil {
				t.Fatalf("derive back seed %d -> %d: %v", target.Seed, effSeed, err)
			}
			backBytes, err := back.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(backBytes, baseBytes) {
				t.Errorf("seed round-tripped snapshot differs from the original base capture (%d vs %d bytes)",
					len(backBytes), len(baseBytes))
			}
		})
	}
}

// TestDeriveSeedIterationChainMatchesCapture pins composability: a
// derived-then-derived chain — iteration transposition first, then seed
// transposition of the *derived* snapshot — must land byte-identical to
// a real capture at the combined (iterations, seed) target, and the
// fused one-step derivation must agree.
func TestDeriveSeedIterationChainMatchesCapture(t *testing.T) {
	for _, c := range equivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w := c.factory()
			fam, okIter := w.(workloads.IterationFamily)
			sf, okSeed := w.(workloads.SeedFamily)
			if !okIter || !okSeed || !sf.SeedInvariant() {
				reason, listed := deriveSkipList[c.name]
				if !listed {
					t.Fatalf("workload %q declares no full derivation family and is not on the documented skip list", c.name)
				}
				t.Skipf("derivation opt-out: %s", reason)
			}

			base, err := core.Capture(c.factory(), c.opts)
			if err != nil {
				t.Fatalf("base capture: %v", err)
			}

			effIters := c.opts.Iterations
			if effIters <= 0 {
				effIters = fam.DefaultIterations()
			}
			effSeed := c.opts.Seed
			if effSeed == 0 {
				effSeed = 1
			}
			mid := c.opts
			mid.Iterations = 2 * effIters
			target := mid
			target.Seed = effSeed + 1

			step1, err := core.DeriveSnapshot(base, c.factory(), mid)
			if err != nil {
				t.Fatalf("chain step 1 (iterations %d -> %d): %v", effIters, mid.Iterations, err)
			}
			chained, err := core.DeriveSnapshot(step1, c.factory(), target)
			if err != nil {
				t.Fatalf("chain step 2 (seed %d -> %d): %v", effSeed, target.Seed, err)
			}
			real, err := core.Capture(c.factory(), target)
			if err != nil {
				t.Fatalf("capture at chained target: %v", err)
			}
			realBytes, err := real.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			chainedBytes, err := chained.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(chainedBytes, realBytes) {
				t.Errorf("seed∘iteration chained snapshot differs from real capture at iterations=%d seed=%d (%d vs %d bytes)",
					target.Iterations, target.Seed, len(chainedBytes), len(realBytes))
			}

			// The fused one-step derivation (iterations and seed at once)
			// must agree with the chain.
			fused, err := core.DeriveSnapshot(base, c.factory(), target)
			if err != nil {
				t.Fatalf("fused derivation: %v", err)
			}
			fusedBytes, err := fused.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fusedBytes, realBytes) {
				t.Errorf("fused (iterations+seed) derivation differs from real capture (%d vs %d bytes)",
					len(fusedBytes), len(realBytes))
			}
		})
	}
}
