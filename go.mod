module hmpt

go 1.22
