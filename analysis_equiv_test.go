// Analysis-cache equivalence tests: for every registered workload, an
// analysis encoded through the versioned analysis codec, stored in the
// content-addressed cache, and loaded back must be byte-identical
// (reflect.DeepEqual) to the live analysis — on both the sweep-engine
// and naive-oracle paths. Together with engine_equiv_test.go and
// snapshot_equiv_test.go this extends the bit-exactness oracle across
// the third caching layer, so "load the analysis" can substitute for
// "probe and sweep the placement space" anywhere.
package hmpt

import (
	"bytes"
	"reflect"
	"testing"

	"hmpt/internal/core"
)

// analysisKeyFor computes the cell's cache key, going through a capture
// context when the options carry a GroupBy policy (its fingerprint
// needs the capture's sites).
func analysisKeyFor(t *testing.T, c equivCase) core.AnalysisKey {
	t.Helper()
	if c.opts.GroupBy == nil {
		key, err := core.AnalysisKeyFor(c.name, c.opts, nil)
		if err != nil {
			t.Fatalf("key: %v", err)
		}
		return key
	}
	snap, err := core.Capture(c.factory(), c.opts)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	ctx, err := core.NewContext(snap)
	if err != nil {
		t.Fatalf("context: %v", err)
	}
	key, err := core.AnalysisKeyFor(c.name, c.opts, ctx.Sites())
	if err != nil {
		t.Fatalf("key: %v", err)
	}
	return key
}

// TestAnalysisCacheRoundTrip stores and reloads every registered
// workload's analysis through the cache, comparing byte-for-byte
// against the live engine analysis and the naive-oracle analysis.
func TestAnalysisCacheRoundTrip(t *testing.T) {
	cache, err := core.NewAnalysisCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range equivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			key := analysisKeyFor(t, c)

			live, err := core.New(c.factory(), c.opts).Analyze()
			if err != nil {
				t.Fatalf("live: %v", err)
			}
			enc, err := core.EncodeAnalysis(key, live)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			enc2, err := core.EncodeAnalysis(key, live)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatal("analysis does not encode deterministically")
			}
			dec, keyID, err := core.DecodeAnalysis(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if keyID != key.ID() {
				t.Fatalf("embedded key %s, want %s", keyID[:12], key.ID()[:12])
			}
			if !reflect.DeepEqual(live, dec) {
				t.Fatal("decoded analysis differs from live analysis")
			}

			if err := cache.Store(key, live); err != nil {
				t.Fatalf("store: %v", err)
			}
			before := core.SweepEvaluations()
			cached, ok, err := cache.Load(key)
			if err != nil || !ok {
				t.Fatalf("load: ok=%v err=%v", ok, err)
			}
			if got := core.SweepEvaluations() - before; got != 0 {
				t.Errorf("cache load ran %d placement passes, want 0", got)
			}
			if !reflect.DeepEqual(live, cached) {
				t.Fatal("cached analysis differs from live analysis")
			}

			// The naive-oracle path round-trips identically too.
			ref, err := core.New(c.factory(), c.opts).AnalyzeReference()
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			encRef, err := core.EncodeAnalysis(key, ref)
			if err != nil {
				t.Fatalf("encode reference: %v", err)
			}
			decRef, _, err := core.DecodeAnalysis(encRef)
			if err != nil {
				t.Fatalf("decode reference: %v", err)
			}
			if !reflect.DeepEqual(ref, decRef) {
				t.Fatal("decoded oracle analysis differs from the oracle analysis")
			}
			if !bytes.Equal(enc, encRef) {
				t.Fatal("oracle analysis encodes differently from the engine analysis")
			}
		})
	}
}
