// Phase-deduplication equivalence tests: every captured reference run
// must carry the canonical deduplicated trace (each distinct phase shape
// once, multiplicity in Repeat), the deduplicated pipeline must stay
// byte-identical between the compiled engine and the naive per-phase
// oracle, and the O(unique phases) contract must hold: raising a
// kernel's iteration count grows its trace, its snapshot and its
// sampling table not at all.
package hmpt

import (
	"reflect"
	"testing"

	"hmpt/internal/core"
	"hmpt/internal/experiments"
)

// TestDedupMatchesReference: for every registered workload, the capture
// is canonical and the engine and oracle analyses of the deduplicated
// trace are byte-identical.
func TestDedupMatchesReference(t *testing.T) {
	for _, c := range equivCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			snap, err := core.Capture(c.factory(), c.opts)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			d := snap.Trace.Dedup()
			if len(d.Phases) != len(snap.Trace.Phases) {
				t.Errorf("captured trace is not canonical: %d phases but %d distinct shapes",
					len(snap.Trace.Phases), len(d.Phases))
			}
			if !reflect.DeepEqual(snap.Trace, snap.Trace.Canonical()) {
				t.Error("captured trace is not a fixed point of Canonical")
			}
			eng, err := core.NewReplay(snap, c.opts).Analyze()
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			ref, err := core.NewReplay(snap, c.opts).AnalyzeReference()
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			diffAnalyses(t, ref, eng)
		})
	}
}

// TestDedupIterationInvariance is the O(unique phases) claim made
// concrete: the same kernel captured at 10x its default timestep count
// produces a trace with exactly the same number of phases, a snapshot
// within a rounding error of the same size, and an identically shaped
// sampling table — only the multiplicities (and the kernel execution
// itself) grow. The 10x analysis must also stay engine/oracle
// byte-identical.
func TestDedupIterationInvariance(t *testing.T) {
	spec, err := experiments.SpecFor("npb.bt")
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Capture(spec.Fast(), spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	opts10 := spec.Options
	opts10.Iterations = 30 // 10x the fast instance's default of 3
	snap10, err := core.Capture(spec.Fast(), opts10)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := len(snap10.Trace.Phases), len(base.Trace.Phases); got != want {
		t.Errorf("10x-iteration trace has %d phases, 1x has %d — dedup must keep them equal", got, want)
	}
	if got, want := len(snap10.Samples.ByAlloc), len(base.Samples.ByAlloc); got != want {
		t.Errorf("10x sampling table has %d entries, 1x has %d", got, want)
	}
	enc1, err := base.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	enc10, err := snap10.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	// The only growth allowed is field values (repeat counts, sample
	// totals), not structure: sizes are byte-identical because every
	// count is fixed-width on the wire.
	if len(enc10) != len(enc1) {
		t.Errorf("10x snapshot is %d bytes, 1x is %d — encoding must be O(unique phases)", len(enc10), len(enc1))
	}

	eng, err := core.NewReplay(snap10, opts10).Analyze()
	if err != nil {
		t.Fatalf("10x engine: %v", err)
	}
	ref, err := core.NewReplay(snap10, opts10).AnalyzeReference()
	if err != nil {
		t.Fatalf("10x oracle: %v", err)
	}
	diffAnalyses(t, ref, eng)
}
